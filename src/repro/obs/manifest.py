"""Machine-readable run manifests for the experiment engine.

A :class:`TelemetryWriter` turns one engine run into auditable
artifacts under a telemetry directory:

``events.jsonl``
    Append-only structured event log: one ``run_start`` line, one line
    per job event (cache hit / retry / completion, with the job's
    content hash and wall-clock), one ``run_end`` line.  Successive
    runs append, so the file is the full history of the directory.

``manifest.json``
    Snapshot of the *latest* run: engine report, cache counters,
    per-job records (key, label, benchmark, strategy, seed, budgets,
    final status, retries, seconds, and — schema v2 — the full
    ``SimResult`` in ``to_dict`` form), plus host info and the
    repository's git SHA when available.  Written atomically (temp
    file + ``os.replace``) so a crashed run never leaves a torn
    manifest.  Carrying results makes the manifest self-contained:
    ``repro analyze`` and ``repro diff`` consume it without re-running
    anything.

The writer is deliberately decoupled from the engine: it only reads
attributes off the :class:`~repro.runtime.observe.JobEvent` and
:class:`~repro.runtime.observe.EngineReport` objects handed to it, so
this module imports nothing from :mod:`repro.runtime`.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

#: Manifest document schema; bump on incompatible layout changes.
#: v2: job records carry benchmark/strategy/seed/instruction budgets
#: and the full per-job result payload.
MANIFEST_SCHEMA_VERSION = 2


def host_info() -> dict:
    """Best-effort description of the executing host."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """HEAD commit of the repository containing ``cwd``, or ``None``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.getcwd(),
            capture_output=True, text=True, timeout=5,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _job_identity(job) -> dict:
    """Duck-typed identity fields of a ``SimJob`` for the manifest.

    ``benchmark`` is a catalog name or an ad-hoc ``Program`` (use its
    ``name``); ``strategy`` is the spec's human label.  Everything is
    read with ``getattr`` so the writer stays decoupled from
    :mod:`repro.runtime`.
    """
    benchmark = getattr(job, "benchmark", None)
    if benchmark is not None and not isinstance(benchmark, str):
        benchmark = getattr(benchmark, "name", str(benchmark))
    spec = getattr(job, "spec", None)
    return {
        "benchmark": benchmark,
        "strategy": getattr(spec, "label", None) if spec is not None else None,
        "seed": getattr(job, "seed", None),
        "instructions": getattr(job, "instructions", None),
        "warmup": getattr(job, "warmup", None),
    }


class TelemetryWriter:
    """Streams engine events to JSONL and snapshots a run manifest."""

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.events_path = os.path.join(self.directory, "events.jsonl")
        self.manifest_path = os.path.join(self.directory, "manifest.json")
        self._run = 0
        self._jobs: List[dict] = []
        self._by_index: Dict[int, dict] = {}
        self._started = 0.0

    # ------------------------------------------------------------------
    # Engine-facing lifecycle.
    # ------------------------------------------------------------------
    def start_run(self, jobs) -> None:
        """Begin a run over ``jobs`` (a sequence of ``SimJob``)."""
        self._run += 1
        self._started = time.time()
        self._jobs = []
        self._by_index = {}
        for index, job in enumerate(jobs):
            record = {
                "index": index,
                "key": job.key if job.cacheable else None,
                "label": job.label,
                "status": "pending",
                "retries": 0,
                "elapsed": 0.0,
                "result": None,
            }
            record.update(_job_identity(job))
            self._jobs.append(record)
            self._by_index[index] = record
        self._append({
            "event": "run_start", "run": self._run,
            "ts": self._started, "jobs": len(self._jobs),
        })

    def record(self, event) -> None:
        """Log one :class:`JobEvent` and fold it into the job records."""
        result = getattr(event, "result", None)
        record = self._by_index.get(event.index)
        if record is not None:
            if event.status == "hit":
                record["status"] = "hit"
            elif event.status == "retry":
                record["retries"] += 1
            elif event.status == "done":
                record["status"] = "executed"
                record["elapsed"] = event.elapsed
            if result is not None:
                record["result"] = result.to_dict()
        self._append({
            "event": "job", "run": self._run, "ts": time.time(),
            "index": event.index, "label": event.job.label,
            "key": event.job.key if event.job.cacheable else None,
            "status": event.status, "source": event.source,
            "elapsed": event.elapsed, "completed": event.completed,
            "total": event.total,
            "ipc": getattr(result, "ipc", None),
        })

    def finalize(self, report, cache_stats=None) -> str:
        """Close the run: append ``run_end`` and write the manifest.

        Returns the manifest path.
        """
        self._append({
            "event": "run_end", "run": self._run, "ts": time.time(),
            "elapsed": report.elapsed, "cache_hits": report.cache_hits,
            "executed": report.executed, "retried": report.retried,
        })
        manifest = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "run": self._run,
            "created": self._started,
            "finished": time.time(),
            "host": host_info(),
            "git_sha": git_sha(),
            "engine": report.to_dict(),
            "jobs": self._jobs,
        }
        if cache_stats is not None:
            manifest["cache"] = cache_stats.to_dict()
        self._write_atomic(self.manifest_path, manifest)
        return self.manifest_path

    # ------------------------------------------------------------------
    # File plumbing.
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        with open(self.events_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    @staticmethod
    def _write_atomic(path: str, document: dict) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise


def load_manifest(directory: str) -> dict:
    """Read ``manifest.json`` back from a telemetry directory."""
    with open(os.path.join(os.fspath(directory), "manifest.json"),
              encoding="utf-8") as handle:
        return json.load(handle)
