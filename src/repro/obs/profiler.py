"""Deterministic per-phase wall-clock profiling of the pipeline.

Where :mod:`repro.obs.tracer` answers "what did the *simulated machine*
spend its cycles on", the :class:`PhaseProfiler` answers "what does the
*simulator* spend its wall-clock on": every :meth:`Pipeline.step` is
split into the four pipeline phases —

``fetch``
    trace-cache / I-cache fetch, decode, rename enqueue;
``assign``
    issue and cluster steering (the paper's assignment mechanisms);
``execute``
    retire + cycle accounting + reservation-station dispatch/execute;
``fill``
    fill-unit trace construction and installs

— and the profiler accumulates seconds per phase, optionally bucketed
into fixed-cycle-width samples for flame-chart export.  It hangs off
the same ``is not None`` fast-path slot as the pipeline observers
(``pipeline.profiler``), so unprofiled runs cost one attribute test per
cycle, and the profiled step only *times* the existing phase calls —
simulated results are byte-identical with the profiler on or off.

Outputs:

* :meth:`publish` — ``profile.seconds{phase=...}`` /
  ``profile.share{phase=...}`` / ``profile.cycles_per_second`` metrics
  into a :class:`~repro.obs.metrics.MetricsRegistry` (scraped by the
  live telemetry exporter);
* :meth:`to_speedscope` / :meth:`write` — a `speedscope
  <https://www.speedscope.app>`_ JSON flame chart, one frame per phase,
  one open/close span per (sample, phase);
* :meth:`render` — a terminal table (used by ``repro profile``).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

#: The pipeline phases, in within-step order of the speedscope lanes.
PHASES = ("fetch", "assign", "execute", "fill")

#: Default cycles per flame-chart sample (0 = totals only).
DEFAULT_SAMPLE_CYCLES = 1_000


class PhaseProfiler:
    """Accumulates wall-clock seconds per pipeline phase.

    Attach to a pipeline (directly or via its simulator)::

        profiler = PhaseProfiler(sample_cycles=1_000)
        with profiler.attach(simulator.pipeline):
            simulator.run(30_000)
        print(profiler.render())
        profiler.write("profile.speedscope.json")

    ``sample_cycles`` batches per-phase time into fixed-cycle-width
    samples so :meth:`to_speedscope` can show *when* the simulator was
    slow, not just where; ``0`` keeps totals only (cheapest).
    """

    def __init__(
        self,
        sample_cycles: int = DEFAULT_SAMPLE_CYCLES,
        _clock=time.perf_counter,
    ) -> None:
        if sample_cycles < 0:
            raise ValueError(
                f"sample_cycles must be >= 0, got {sample_cycles}")
        self.sample_cycles = sample_cycles
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.steps = 0
        #: ``(first_cycle, {phase: seconds})`` per completed sample.
        self.samples: List[tuple] = []
        self._clock = _clock
        self._open: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self._open_start: Optional[int] = None
        self._pipeline = None

    # ------------------------------------------------------------------
    # Attachment lifecycle (mirrors PipelineObserver's).
    # ------------------------------------------------------------------
    def attach(self, pipeline) -> "PhaseProfiler":
        if pipeline.profiler is not None:
            raise RuntimeError("pipeline already has a profiler attached")
        self._pipeline = pipeline
        pipeline.profiler = self
        return self

    def detach(self) -> None:
        pipeline = self._pipeline
        if pipeline is None:
            return
        if pipeline.profiler is self:
            pipeline.profiler = None
        self._pipeline = None
        self._flush_sample()

    def __enter__(self) -> "PhaseProfiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Accounting (called once per profiled step by the pipeline).
    # ------------------------------------------------------------------
    def account(self, execute: float, fill: float, assign: float,
                fetch: float, cycle: int) -> None:
        """Charge one step's phase durations (seconds) at ``cycle``."""
        seconds = self.seconds
        seconds["execute"] += execute
        seconds["fill"] += fill
        seconds["assign"] += assign
        seconds["fetch"] += fetch
        self.steps += 1
        if not self.sample_cycles:
            return
        if self._open_start is None:
            self._open_start = cycle
        window = self._open
        window["execute"] += execute
        window["fill"] += fill
        window["assign"] += assign
        window["fetch"] += fetch
        if cycle - self._open_start + 1 >= self.sample_cycles:
            self._flush_sample()

    def _flush_sample(self) -> None:
        if self._open_start is None:
            return
        self.samples.append((self._open_start, dict(self._open)))
        self._open = {phase: 0.0 for phase in PHASES}
        self._open_start = None

    def finish(self) -> None:
        """Flush the final partial sample (idempotent).

        A run shorter than ``sample_cycles`` never completes a window
        inside :meth:`account`, so without this its samples would be
        silently empty; :meth:`detach` and the exporters call it, and
        callers driving the pipeline manually may too.
        """
        self._flush_sample()

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def shares(self) -> Dict[str, float]:
        """Fraction of profiled wall-clock per phase (sums to 1)."""
        total = self.total_seconds
        if not total:
            return {phase: 0.0 for phase in PHASES}
        return {phase: self.seconds[phase] / total for phase in PHASES}

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second inside the step loop."""
        total = self.total_seconds
        return self.steps / total if total else 0.0

    def wall_metrics(self) -> Dict[str, float]:
        """The profiled run as flat ``wall.*`` metrics.

        This is the measurement surface of ``repro bench`` and the
        perf-history store: simulator throughput in kilocycles per
        wall-clock second plus the per-phase share of the step loop.
        """
        metrics = {"wall.kcyc_per_s": self.cycles_per_second / 1_000.0}
        for phase, share in self.shares().items():
            metrics[f"wall.phase_share.{phase}"] = share
        return metrics

    def publish(self, registry) -> None:
        """Publish ``profile.*`` metrics into ``registry``."""
        shares = self.shares()
        for phase in PHASES:
            registry.gauge("profile.seconds", phase=phase).set(
                self.seconds[phase])
            registry.gauge("profile.share", phase=phase).set(shares[phase])
        registry.gauge("profile.total_seconds").set(self.total_seconds)
        registry.gauge("profile.cycles_per_second").set(
            self.cycles_per_second)
        registry.counter("profile.steps").inc(self.steps)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_speedscope(self, name: str = "repro pipeline") -> dict:
        """The profile as a speedscope *evented* document.

        One frame per phase; each sample window contributes one
        open/close span per phase (phases laid head-to-tail, so the
        chart is a wall-clock flame of the step loop).  With
        ``sample_cycles=0`` the whole run is a single window.
        """
        self._flush_sample()
        windows = self.samples or (
            [(0, dict(self.seconds))] if self.steps else [])
        frame_index = {phase: i for i, phase in enumerate(PHASES)}
        events = []
        at = 0.0
        for first_cycle, window in windows:
            for phase in PHASES:
                duration = window.get(phase, 0.0)
                if duration <= 0.0:
                    continue
                events.append({"type": "O", "frame": frame_index[phase],
                               "at": at})
                at += duration
                events.append({"type": "C", "frame": frame_index[phase],
                               "at": at})
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "shared": {"frames": [{"name": phase} for phase in PHASES]},
            "profiles": [{
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": at,
                "events": events,
            }],
            "exporter": "repro profile",
        }

    def write(self, path: str, name: str = "repro pipeline") -> None:
        """Write :meth:`to_speedscope` JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_speedscope(name), handle)

    def render(self) -> str:
        """Terminal table of per-phase seconds and shares."""
        total = self.total_seconds
        lines = [f"{'phase':<10} {'seconds':>10} {'share':>8}"]
        for phase in PHASES:
            seconds = self.seconds[phase]
            share = seconds / total if total else 0.0
            lines.append(f"{phase:<10} {seconds:>10.4f} {share:>7.1%}")
        lines.append(f"{'total':<10} {total:>10.4f} {'':>8}")
        if self.steps:
            lines.append(
                f"{self.steps} cycles profiled, "
                f"{self.cycles_per_second:,.0f} cycles/s"
            )
        return "\n".join(lines)
