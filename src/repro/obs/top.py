"""``repro top``: a live terminal view of a running sweep.

Renders a per-job table — status, attempt count, simulated cycles,
sim-IPC, throughput — refreshed in place, from either of the two live
channels the runtime exposes:

* a **telemetry directory**: the append-only journal
  (``events.jsonl``) provides job statuses as they happen and the
  ``heartbeats/`` channel provides in-flight worker progress
  (:mod:`repro.obs.heartbeat`);
* a **telemetry server URL** (``--serve``): the ``/jobs`` endpoint of
  :class:`repro.obs.server.TelemetryServer`, which serves the same
  document pre-merged.

No curses: the screen is repainted with plain ANSI control sequences,
and only when the output stream is a real TTY — piped output gets one
clean snapshot per refresh with no control characters, the same policy
as the engine's progress printer.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.obs.heartbeat import HeartbeatMonitor, heartbeat_dir
from repro.runtime.observe import stream_is_tty

#: Seconds between repaints unless overridden.
DEFAULT_INTERVAL = 1.0

#: IPC samples kept per job for the live trend sparkline.
TREND_POINTS = 10

#: Connection-retry schedule for URL sources: a refused or dropped
#: connection is retried this many times with exponential backoff
#: before `top` concludes the server is really gone.
URL_RETRIES = 4
URL_BACKOFF = 0.25

_ANSI_RESET = "\x1b[0m"
_ANSI_HOME_CLEAR = "\x1b[H\x1b[2J"
_ANSI_STATUS = {
    "executed": "\x1b[32m",   # green
    "hit": "\x1b[2m",         # dim
    "resumed": "\x1b[2m",
    "running": "\x1b[36m",    # cyan
    "stale": "\x1b[33m",      # yellow
    "failed": "\x1b[31m",     # red
}

#: Statuses that mean a job is finished (well or badly).
_TERMINAL = ("hit", "executed", "resumed", "failed")


# ----------------------------------------------------------------------
# Sources: URL (/jobs document) or telemetry directory (journal+beats).
# ----------------------------------------------------------------------
def is_url(source: str) -> bool:
    return source.startswith(("http://", "https://"))


def fetch_url_state(url: str, timeout: float = 5.0) -> dict:
    """Fetch the ``/jobs`` document from a telemetry server."""
    import urllib.request

    url = url.rstrip("/")
    if not url.endswith("/jobs"):
        url += "/jobs"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        document = json.load(response)
    document["source"] = url
    return document


def read_dir_state(directory: str,
                   stale_after: Optional[float] = None) -> dict:
    """Build the same document from a telemetry directory.

    Replays ``events.jsonl`` (keeping only the newest run) exactly the
    way :class:`~repro.obs.manifest.TelemetryWriter` folds job events
    into records, then merges current heartbeats onto still-pending
    jobs.  Tolerates a missing or torn journal: an empty document means
    "no run here yet", not an error.
    """
    directory = os.fspath(directory)
    by_index: Dict[int, dict] = {}
    run = None
    status = "waiting"
    total = None
    summary: Dict[str, object] = {}
    try:
        with open(os.path.join(directory, "events.jsonl"),
                  encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        lines = []
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        event = record.get("event")
        if event == "run_start":
            by_index = {}
            run = record.get("run")
            status = "running"
            total = record.get("jobs")
            summary = {}
        elif event == "job":
            index = record.get("index")
            job = by_index.setdefault(index, {
                "index": index,
                "label": record.get("label"),
                "key": record.get("key"),
                "status": "pending",
                "retries": 0,
                "elapsed": 0.0,
                "ipc": None,
            })
            state = record.get("status")
            if state == "retry":
                job["retries"] += 1
                if record.get("reason"):
                    job["reason"] = record["reason"]
            elif state == "done":
                job["status"] = "executed"
                job["elapsed"] = record.get("elapsed", 0.0)
                job.pop("reason", None)
            elif state in ("hit", "resumed", "failed"):
                job["status"] = state
                if state == "failed" and record.get("reason"):
                    job["reason"] = record["reason"]
            if record.get("ipc") is not None:
                job["ipc"] = record["ipc"]
            result = record.get("result")
            if isinstance(result, dict):
                job["cycles"] = result.get("cycles")
                job["retired"] = result.get("retired")
        elif event == "run_end":
            status = record.get("status", "complete")
            summary = {
                "elapsed": record.get("elapsed"),
                "cache_hits": record.get("cache_hits"),
                "executed": record.get("executed"),
                "retried": record.get("retried"),
                "failed": record.get("failed"),
            }
    monitor = HeartbeatMonitor(heartbeat_dir(directory),
                               stale_after=stale_after)
    beats = monitor.by_index()
    # An in-flight job may have beaten before emitting any journal
    # event — synthesize its row from the heartbeat so `top` shows
    # workers the moment they start, not at their first completion.
    for index, beat in beats.items():
        if index not in by_index:
            by_index[index] = {
                "index": index,
                "label": beat.get("label"),
                "key": beat.get("key"),
                "status": "pending",
                "retries": beat.get("attempt", 0),
                "elapsed": 0.0,
                "ipc": None,
            }
    jobs = [by_index[index] for index in sorted(by_index)]
    for job in jobs:
        beat = beats.get(job["index"])
        if beat is not None and job.get("status") == "pending":
            job["heartbeat"] = beat
    return {
        "source": directory,
        "run": run,
        "status": status,
        "total": total,
        "summary": summary,
        "jobs": jobs,
        "heartbeats": sorted(beats.values(),
                             key=lambda b: b.get("index", 0)),
    }


def load_state(source: str,
               stale_after: Optional[float] = None) -> dict:
    """Dispatch on the source kind: URL or telemetry directory."""
    if is_url(source):
        return fetch_url_state(source)
    return read_dir_state(source, stale_after=stale_after)


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def _fmt_int(value) -> str:
    if value is None:
        return "-"
    return f"{int(value):,}"


def _fmt_float(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _job_row(job: dict) -> dict:
    """Flatten one job record (plus optional heartbeat) for the table."""
    status = job.get("status", "pending")
    beat = job.get("heartbeat")
    cycles = retired = ipc = rate = age = None
    interval_ipc = None
    elapsed = job.get("elapsed") or None
    if beat is not None:
        if status == "pending":
            status = "stale" if beat.get("stale") else "running"
        cycles = beat.get("cycles")
        retired = beat.get("retired")
        ipc = beat.get("ipc")
        age = beat.get("age")
        # Windowed IPC from an attached interval recorder (the
        # ``interval`` heartbeat field): the *current* behaviour, vs
        # the cumulative ``ipc`` — preferred for the trend sparkline.
        interval = beat.get("interval")
        if isinstance(interval, dict) \
                and isinstance(interval.get("ipc"), (int, float)):
            interval_ipc = interval["ipc"]
        hb_elapsed = beat.get("elapsed") or 0.0
        if cycles and hb_elapsed > 0:
            rate = cycles / hb_elapsed
        elapsed = elapsed or hb_elapsed
    result = job.get("result")
    if isinstance(result, dict):
        cycles = cycles if cycles is not None else result.get("cycles")
        retired = retired if retired is not None else result.get("retired")
    if cycles is None:
        cycles = job.get("cycles")
    if retired is None:
        retired = job.get("retired")
    if ipc is None:
        ipc = job.get("ipc")
    return {
        "index": job.get("index"),
        "status": status,
        "label": job.get("label") or "?",
        "retries": job.get("retries", 0),
        "cycles": cycles,
        "retired": retired,
        "ipc": ipc,
        "interval_ipc": interval_ipc,
        "rate": rate,
        "elapsed": elapsed,
        "age": age,
        "reason": job.get("reason"),
    }


def update_trends(document: dict,
                  trends: Dict[int, List[float]]) -> None:
    """Fold one snapshot's per-job IPC into the trend histories.

    Prefers the windowed IPC a worker's interval recorder put on the
    heartbeat (current behaviour) over the cumulative IPC; keeps the
    newest :data:`TREND_POINTS` samples per job index.
    """
    for job in document.get("jobs", []):
        row = _job_row(job)
        index = row["index"]
        if index is None:
            continue
        value = (row["interval_ipc"] if row["interval_ipc"] is not None
                 else row["ipc"])
        if value is None:
            continue
        series = trends.setdefault(index, [])
        series.append(float(value))
        del series[:-TREND_POINTS]


def render_state(document: dict, ansi: bool = False,
                 clock=time.strftime,
                 trends: Optional[Dict[int, List[float]]] = None) -> str:
    """Render the document as a header plus a per-job table.

    ``trends`` (job index → recent IPC samples, see
    :func:`update_trends`) adds a live per-worker IPC sparkline column.
    """
    jobs = [_job_row(job) for job in document.get("jobs", [])]
    total = document.get("total") or len(jobs)
    by_status: Dict[str, int] = {}
    for row in jobs:
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
    done = sum(by_status.get(status, 0) for status in _TERMINAL)
    hits = by_status.get("hit", 0)
    hit_rate = hits / done if done else 0.0
    retries = sum(row["retries"] for row in jobs)

    lines: List[str] = []
    status = document.get("status", "running")
    run = document.get("run")
    source = document.get("source", "")
    head = f"repro top — {source}"
    if run is not None:
        head += f"  (run {run}, {status})"
    elif document.get("report") is not None:
        head += f"  ({status})" if status else ""
    lines.append(head)
    lines.append(
        f"jobs {done}/{total} done · executed {by_status.get('executed', 0)}"
        f" · hits {hits} ({hit_rate:.0%})"
        f" · resumed {by_status.get('resumed', 0)}"
        f" · failed {by_status.get('failed', 0)}"
        f" · retries {retries}"
        f" · {clock('%H:%M:%S')}"
    )
    cache = document.get("cache")
    if cache:
        lines.append(
            f"cache: hits {cache.get('hits', 0)}"
            f" misses {cache.get('misses', 0)}"
            f" stores {cache.get('stores', 0)}"
            f" hit-rate {cache.get('hit_rate', 0.0):.0%}"
        )
    lines.append("")
    from repro.analysis.history import sparkline

    header = (f"{'#':>3}  {'status':<9} {'job':<36} {'try':>3} "
              f"{'cycles':>10} {'ipc':>7} {'trend':<{TREND_POINTS}} "
              f"{'kcyc/s':>8} {'time':>7} {'beat':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    if not jobs:
        lines.append("(no run data yet)")
    for row in jobs:
        status_word = f"{row['status']:<9}"
        if ansi:
            color = _ANSI_STATUS.get(row["status"])
            if color:
                status_word = f"{color}{status_word}{_ANSI_RESET}"
        rate = (f"{row['rate'] / 1000:.1f}"
                if row["rate"] is not None else "-")
        elapsed = (f"{row['elapsed']:.1f}s"
                   if row["elapsed"] is not None else "-")
        age = f"{row['age']:.1f}s" if row["age"] is not None else "-"
        trend = sparkline((trends or {}).get(row["index"], ()))
        lines.append(
            f"{row['index'] if row['index'] is not None else '?':>3}  "
            f"{status_word} {row['label']:<36.36} {row['retries']:>3} "
            f"{_fmt_int(row['cycles']):>10} {_fmt_float(row['ipc']):>7} "
            f"{trend:<{TREND_POINTS}} {rate:>8} {elapsed:>7} {age:>6}"
        )
        if row["reason"]:
            lines.append(f"      ! {row['reason']}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The loop.
# ----------------------------------------------------------------------
def run_top(
    source: str,
    stream=None,
    interval: float = DEFAULT_INTERVAL,
    once: bool = False,
    ansi: Optional[bool] = None,
    stale_after: Optional[float] = None,
    max_refreshes: Optional[int] = None,
    _sleep=time.sleep,
) -> int:
    """Tail ``source`` until its run finishes (or forever for ``--once=False``
    on an idle directory).  Returns a process exit code.

    ``ansi=None`` auto-detects: screen-repaint control sequences and
    colors only when ``stream`` is a TTY.  ``max_refreshes`` bounds the
    loop for tests.
    """
    import http.client
    import sys

    stream = stream if stream is not None else sys.stdout
    if ansi is None:
        ansi = stream_is_tty(stream)
    refreshes = 0
    trends: Dict[int, List[float]] = {}
    #: Errors a flaky or shut-down server surfaces mid-scrape: refused
    #: or reset connections (OSError covers urllib's URLError), a
    #: half-closed socket mid-response (BadStatusLine & friends), or a
    #: torn JSON body from a server killed mid-write.
    url_errors = (OSError, ValueError, http.client.HTTPException)
    while True:
        try:
            document = load_state(source, stale_after=stale_after)
        except url_errors as error:
            if not is_url(source):
                # Directory sources never get here in practice — the
                # reader tolerates missing/torn files — so a raising
                # directory is a real usage error.
                print(f"repro top: cannot read {source}: {error}",
                      file=sys.stderr)
                return 1
            # A server mid-restart (or a network blip) deserves a few
            # retries before we conclude anything.
            document = None
            delay = URL_BACKOFF
            for _ in range(URL_RETRIES):
                _sleep(delay)
                delay *= 2
                try:
                    document = load_state(source, stale_after=stale_after)
                    break
                except url_errors as retry_error:
                    error = retry_error
            if document is None:
                if refreshes:
                    # We were watching a live run and the server went
                    # away — the usual end of a `--serve` sweep, whose
                    # server dies with the run.  That is a clean finish.
                    print(f"repro top: lost contact with {source} "
                          f"({error}); assuming the run ended",
                          file=sys.stderr)
                    return 0
                print(f"repro top: cannot connect to {source} ({error})",
                      file=sys.stderr)
                return 1
        update_trends(document, trends)
        rendered = render_state(document, ansi=ansi, trends=trends)
        if ansi:
            stream.write(_ANSI_HOME_CLEAR)
        stream.write(rendered)
        stream.flush()
        refreshes += 1
        status = document.get("status", "running")
        jobs = document.get("jobs", [])
        finished = bool(jobs) and all(
            job.get("status") in _TERMINAL for job in jobs)
        if once:
            return 0
        if status not in ("running", "waiting") or finished:
            return 0
        if max_refreshes is not None and refreshes >= max_refreshes:
            return 0
        _sleep(interval)
