"""repro.service — simulation-as-a-service over the runtime layer.

The service turns the single-host runtime (``repro.runtime``) into a
shared compute/memoization tier: identical content-addressed cells are
computed once globally and served from the sharded result cache at wire
speed afterwards.

* :class:`ServiceServer` — stdlib HTTP job API grown from the
  read-only :class:`~repro.obs.server.TelemetryServer`: idempotent
  ``POST /jobs`` keyed by :attr:`SimJob.key`, status/result at
  ``GET /jobs/<key>``, queue depth at ``GET /queue``, the HTTP cache
  backend at ``GET /cache/<key>``, and a journaled on-disk queue that
  survives server restarts (:mod:`repro.service.server`);
* :class:`JobQueue` — the durable lease-based queue behind the API
  (:mod:`repro.service.queue`);
* :class:`WorkerAgent` — the pull-based execution agent behind
  ``repro worker URL``: claim with lease, execute via
  :meth:`SimJob.run`, heartbeat over HTTP, complete or fail
  (:mod:`repro.service.worker`);
* :func:`submit_jobs` / :func:`fetch_results` — the client helpers
  behind ``repro submit`` / ``repro fetch``
  (:mod:`repro.service.client`);
* :class:`ServiceTransport` — the hardened HTTP client every agent
  shares: idempotent retries keyed on ``X-Repro-Request-Id``,
  per-endpoint circuit breakers, deterministic backoff jitter,
  ``Retry-After`` honoring (:mod:`repro.service.transport`);
* :func:`run_chaos_soak` / :class:`ChaosReport` — the ``repro chaos``
  soak harness: a pinned job matrix pushed through server + workers
  under a combined fault plan, asserting zero lost jobs and
  byte-identical results (:mod:`repro.service.chaos`).

Results are byte-identical whether a cell is computed inline, by a
local pool, or by a remote worker — the service only moves *where*
:meth:`SimJob.run` executes, never *what* it computes.  See
``docs/SERVICE.md`` for the API schema, the lease protocol, and the
cache sharding/eviction design.
"""

from repro.service.chaos import ChaosReport, run_chaos_soak
from repro.service.client import (
    JobRejected,
    RemoteJobFailed,
    fetch_results,
    latency_breakdown,
    queue_snapshot,
    render_latency,
    submit_jobs,
)
from repro.service.queue import (
    DEFAULT_LEASE_SECONDS,
    JobQueue,
    QueueEntry,
    QueueReadOnly,
)
from repro.service.server import SERVICE_API_VERSION, ServiceServer
from repro.service.transport import ServiceTransport
from repro.service.worker import ServiceUnavailable, WorkerAgent

__all__ = [
    "ChaosReport",
    "DEFAULT_LEASE_SECONDS",
    "JobQueue",
    "JobRejected",
    "QueueEntry",
    "QueueReadOnly",
    "RemoteJobFailed",
    "SERVICE_API_VERSION",
    "ServiceServer",
    "ServiceTransport",
    "ServiceUnavailable",
    "WorkerAgent",
    "fetch_results",
    "latency_breakdown",
    "queue_snapshot",
    "render_latency",
    "run_chaos_soak",
]
