"""Pull-based worker agent: claims, executes, heartbeats, completes.

``repro worker URL`` runs a :class:`WorkerAgent` loop against a
:class:`~repro.service.server.ServiceServer`:

1. ``POST /claim`` — lease the oldest pending job.  An idle queue is
   polled at ``poll_interval``; ``max_idle`` bounds how long an idle
   worker lingers (fleet scale-down), ``max_jobs`` bounds how many jobs
   one agent runs (CI smoke tests).
2. Check the *local* result cache — the service deduplicates at
   submission, but a cell can land in the cache between submit and
   claim, and serving it from disk beats re-simulating.
3. Execute via the exact :meth:`SimJob.run` path the
   :class:`~repro.runtime.executor.ExperimentEngine` uses, with a
   simulator progress hook that ``POST /heartbeat``s every
   ``heartbeat_cycles`` simulated cycles — the same cadence contract as
   :mod:`repro.obs.heartbeat`, carried over HTTP.  Each heartbeat
   renews the job's lease, so "alive" and "making progress" are the
   same signal.
4. ``POST /complete`` with the result document (or ``POST /fail`` when
   the simulation itself raises — a deterministic error no retry can
   fix).  Results are also stored in the worker's local cache.

Crash-safety falls out of the lease protocol, not worker cleverness: a
SIGKILL'd worker simply stops heartbeating, the server's next sweep
re-queues the job, and another claim re-executes it.  Because jobs are
content-addressed and simulations deterministic, the re-executed result
is byte-identical — a late completion from a zombie worker is
indistinguishable from the re-queued one.

Fault injection: arming ``worker.lease_expire`` in a
:class:`~repro.resilience.FaultPlan` makes the agent *abandon* a job
right after claiming it — no execution, no heartbeat, no completion —
which is exactly what a worker killed at the worst moment looks like to
the server.  The chaos suite uses it to prove the lease path re-queues
exactly once with an unchanged final result.

Connection trouble is never a traceback: claims retry with exponential
backoff, and a server that stays gone ends the loop with a clean
message (exit 0 if this agent ever did useful work, 1 if it could never
connect).

All protocol round trips go through a
:class:`~repro.service.transport.ServiceTransport`: retries reuse one
``X-Repro-Request-Id`` (so the server's replay cache absorbs duplicated
completions), backoff is deterministically jittered by worker name (no
thundering herd after ``server.crash``), per-endpoint circuit breakers
gate a flapping server, and claims carry the worker's deadline.
Heartbeats are fail-soft *for any reason* — an HTTP error, a torn
response, a local I/O failure — the simulation keeps running and the
lease-expiry path covers true worker death.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.obs.heartbeat import HEARTBEAT_SCHEMA_VERSION
from repro.obs.spans import SpanRecorder, TraceContext
from repro.runtime.cache import ResultCache
from repro.runtime.job import SimJob
from repro.runtime.settings import resolve_trace_dir

#: Default seconds between claim polls when the queue is empty.
DEFAULT_POLL_INTERVAL = 1.0

#: Claim-connection retry schedule: attempts and backoff base seconds.
CONNECT_RETRIES = 4
CONNECT_BACKOFF = 0.25

#: Seconds allowed for one worker-protocol HTTP round trip.
REQUEST_TIMEOUT = 10.0


class ServiceUnavailable(OSError):
    """The service endpoint cannot be reached (or returned junk)."""


def _post_json(url: str, path: str, document: dict,
               timeout: float = REQUEST_TIMEOUT,
               headers: Optional[dict] = None) -> dict:
    """One POST round trip; raises :class:`ServiceUnavailable` on trouble."""
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    merged = {"Content-Type": "application/json"}
    if headers:
        merged.update(headers)
    request = urllib.request.Request(
        f"{url.rstrip('/')}{path}",
        data=body,
        headers=merged,
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.load(response)
    except urllib.error.HTTPError as error:
        # The server answered: surface its error document.
        try:
            payload = json.load(error)
        except Exception:
            payload = {"error": str(error)}
        payload.setdefault("status", error.code)
        return payload
    except (OSError, socket.timeout, http.client.HTTPException,
            ValueError) as error:
        # HTTPException covers IncompleteRead/RemoteDisconnected from
        # torn responses — NOT OSError subclasses, easy to let escape.
        raise ServiceUnavailable(f"{path}: {error}") from None
    if not isinstance(payload, dict):
        raise ServiceUnavailable(f"{path}: non-object response")
    return payload


class WorkerAgent:
    """One pull-based execution loop against a service URL."""

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_jobs: Optional[int] = None,
        max_idle: Optional[float] = None,
        heartbeat_cycles: int = 2_000,
        interval_cycles: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        faults=None,
        stream=None,
        outage_grace: float = 0.0,
        _sleep=time.sleep,
    ) -> None:
        self.url = url.rstrip("/")
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval = max(0.05, float(poll_interval))
        self.max_jobs = max_jobs
        self.max_idle = max_idle
        #: Seconds a *connected* worker keeps polling through a service
        #: outage before exiting.  0 keeps the historical behavior
        #: (exit cleanly on the first exhausted retry budget); the
        #: chaos soak raises it so workers ride out server restarts.
        self.outage_grace = max(0.0, float(outage_grace))
        self.heartbeat_cycles = max(0, int(heartbeat_cycles))
        # Interval time series: > 0 attaches an IntervalRecorder to
        # every executed job and rides its freshest window on each
        # heartbeat (the `interval` field), which the service stores
        # and /metrics exports as repro_worker_interval_* gauges.
        from repro.runtime.settings import resolve_interval_cycles

        self.interval_cycles = resolve_interval_cycles(interval_cycles)
        # The worker's cache never goes remote: the service already
        # told us the key was a miss when it queued the job.
        self.cache = cache if cache is not None else ResultCache(remote=False)
        self.faults = faults
        self.stream = stream if stream is not None else sys.stderr
        self._sleep = _sleep
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_abandoned = 0
        self.cache_hits = 0
        self.heartbeats = 0
        self.heartbeat_errors = 0
        # Distributed tracing: spans buffer here and ship to the
        # service's POST /spans after each job (REPRO_TRACE_DIR adds a
        # local spans.jsonl).  The cache emits its lookup/store spans
        # through the same recorder whenever a trace context is active.
        self.spans = SpanRecorder(directory=resolve_trace_dir(), keep=True)
        self.span_ship_errors = 0
        self.cache.tracer = self.spans
        # Every protocol round trip rides the hardened transport:
        # request-id-keyed idempotent retries, jittered backoff keyed
        # on this worker's name, per-endpoint circuit breakers.
        from repro.service.transport import ServiceTransport

        self.transport = ServiceTransport(
            self.url, name=self.name, retries=CONNECT_RETRIES,
            backoff=CONNECT_BACKOFF, _sleep=_sleep)

    def _say(self, message: str) -> None:
        print(f"worker {self.name}: {message}", file=self.stream)

    # ------------------------------------------------------------------
    def _claim(self) -> Optional[dict]:
        """One claim via the transport's retry/breaker/jitter stack;
        raises when the server stays unreachable through the whole
        budget.  The claim carries this worker's deadline so a claim
        delayed past our patience is refused server-side instead of
        burning a lease on a request we already gave up on."""
        return self.transport.post_json(
            "/claim", {"worker": self.name},
            deadline=time.time()
            + REQUEST_TIMEOUT * (CONNECT_RETRIES + 1) + 30.0)

    def run(self) -> int:
        """The claim/execute loop; returns a process exit code."""
        connected = False
        idle_since: Optional[float] = None
        outage_since: Optional[float] = None
        while True:
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                self._say(f"done: {self.jobs_done} job(s) executed")
                return 0
            claim_started = time.time()
            try:
                response = self._claim()
            except ServiceUnavailable as error:
                if connected and self.outage_grace > 0:
                    now = time.monotonic()
                    if outage_since is None:
                        outage_since = now
                        self._say(f"service unreachable ({error}); "
                                  f"retrying for up to "
                                  f"{self.outage_grace:.0f}s")
                    if now - outage_since < self.outage_grace:
                        self._sleep(self.poll_interval)
                        continue
                if connected:
                    self._say(f"service went away ({error}); exiting")
                    return 0
                self._say(f"cannot connect to {self.url} ({error})")
                return 1
            connected = True
            outage_since = None
            job_payload = response.get("job") if response else None
            if not job_payload:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (self.max_idle is not None
                        and now - idle_since >= self.max_idle):
                    self._say("queue idle; exiting")
                    return 0
                self._sleep(self.poll_interval)
                continue
            idle_since = None
            self._handle(response, claim_started=claim_started)

    # ------------------------------------------------------------------
    def _handle(self, claim: dict,
                claim_started: Optional[float] = None) -> None:
        key = claim.get("key")
        index = claim.get("index", 0)
        attempt = max(0, int(claim.get("claims", 1)) - 1)
        run_id = claim.get("run_id")
        try:
            job = SimJob.from_canonical(claim["job"])
        except (KeyError, ValueError, TypeError) as error:
            self._report_fail(key, f"undecodable job payload: {error}")
            return
        if key is not None and job.key != key:
            self._report_fail(
                key, f"key mismatch: payload hashes to {job.key}")
            return
        if (self.faults is not None
                and self.faults.fires("worker.lease_expire",
                                      index=index, attempt=attempt)):
            # Injected abandonment: hold the claim silently until the
            # lease lapses — to the server, a worker killed post-claim.
            # No spans either: a dead worker records nothing.
            self.jobs_abandoned += 1
            self._say(f"abandoning {job.label} (injected lease expiry)")
            return
        self._say(f"claimed {job.label} (attempt {attempt})")
        context = TraceContext.from_header(claim.get("trace"))
        if context is not None and not context.sampled:
            context = None
        claim_span = None
        if context is not None:
            # Lease-to-claim: from the claim POST leaving this process
            # to the moment execution actually starts.
            claim_span = self.spans.start(
                "worker.claim", context, stage="claim",
                worker=self.name, attempt=attempt, key=job.key,
                run_id=run_id)
            if claim_started is not None:
                claim_span.start = claim_started
            self.spans.push(context)
        try:
            self._execute(claim, job, key, index, attempt, run_id,
                          context, claim_span)
        finally:
            if context is not None:
                self.spans.pop()
                self._ship_spans()

    def _execute(self, claim, job, key, index, attempt, run_id,
                 context, claim_span) -> None:
        """Cache-check, run, store, report — span-annotated when traced."""
        cached = self.cache.load(job)
        if cached is not None:
            self.cache_hits += 1
            if claim_span is not None:
                self.spans.finish(claim_span, cache_hit=True)
            self._report_complete(job, cached.to_dict(), elapsed=0.0,
                                  context=context, run_id=run_id)
            return
        started = time.monotonic()
        profiler = None
        sim_span = None
        if context is not None:
            self.spans.finish(claim_span, cache_hit=False)
            # Totals-only profiler: the phase split rides along as
            # child spans of the simulate span (byte-identical result).
            from repro.obs.profiler import PhaseProfiler

            profiler = PhaseProfiler(sample_cycles=0)
            sim_span = self.spans.start(
                "worker.simulate", context, stage="simulate",
                worker=self.name, key=job.key, label=job.label,
                run_id=run_id)
        recorder = None
        if self.interval_cycles > 0:
            from repro.obs.timeseries import IntervalRecorder

            recorder = IntervalRecorder(
                interval_cycles=self.interval_cycles)
        hook = self._heartbeat_hook(job, index, attempt, started,
                                    run_id=run_id, recorder=recorder)
        try:
            result = job.run(
                progress_hook=hook if self.heartbeat_cycles else None,
                progress_interval=self.heartbeat_cycles or 2_000,
                profiler=profiler,
                recorder=recorder,
            )
        except Exception as error:
            # Deterministic simulation error: retrying on another
            # worker would fail identically, so tell the server.
            if sim_span is not None:
                self.spans.finish(sim_span, status="error",
                                  error=type(error).__name__)
            self._report_fail(key, f"{type(error).__name__}: {error}",
                              context=context, run_id=run_id)
            return
        elapsed = time.monotonic() - started
        if sim_span is not None:
            self.spans.finish(sim_span, ipc=result.ipc)
            self._phase_spans(context, sim_span, profiler, run_id)
        self.cache.store(job, result, elapsed=elapsed)
        self._report_complete(job, result.to_dict(), elapsed=elapsed,
                              context=context, run_id=run_id)

    def _phase_spans(self, context, sim_span, profiler, run_id) -> None:
        """The profiler's phase split as children of the simulate span,
        laid head-to-tail from its start (speedscope-style)."""
        from repro.obs.profiler import PHASES

        parent = TraceContext(context.trace_id, sim_span.span_id,
                              sampled=True)
        at = sim_span.start
        for phase in PHASES:
            seconds = profiler.seconds.get(phase, 0.0)
            if seconds <= 0.0:
                continue
            self.spans.emit(f"phase.{phase}", parent, at, at + seconds,
                            stage="phase", worker=self.name,
                            run_id=run_id)
            at += seconds

    def _ship_spans(self) -> None:
        """POST buffered spans to the service (best-effort)."""
        records = self.spans.drain()
        if not records:
            return
        try:
            _post_json(self.url, "/spans",
                       {"spans": records, "worker": self.name},
                       timeout=5.0)
        except ServiceUnavailable:
            self.span_ship_errors += 1

    def _heartbeat_hook(self, job: SimJob, index: int, attempt: int,
                        started: float, run_id=None, recorder=None):
        """A simulator progress hook posting heartbeats over HTTP."""
        def beat(pipeline) -> None:
            stats = pipeline.stats
            record = {
                "schema": HEARTBEAT_SCHEMA_VERSION,
                "pid": os.getpid(),
                "index": index,
                "key": job.key,
                "label": job.label,
                "attempt": attempt,
                "beats": self.heartbeats,
                "cycles": stats.cycles,
                "retired": stats.retired,
                "ipc": stats.ipc,
                "elapsed": time.monotonic() - started,
                "worker": self.name,
            }
            if run_id is not None:
                record["run_id"] = run_id
            if recorder is not None:
                window = recorder.last_window()
                if window is not None:
                    record["interval"] = window
            try:
                _post_json(self.url, "/heartbeat", record, timeout=5.0)
                self.heartbeats += 1
            except Exception as error:
                # Beats are best-effort: ANY failure — connection loss,
                # torn response, local I/O — degrades liveness
                # reporting, never the simulation.  Warn once so logs
                # show the degradation without a line per beat; if this
                # worker is truly dead, lease expiry re-queues the job.
                if self.heartbeat_errors == 0:
                    self._say("heartbeat failed "
                              f"({type(error).__name__}: {error}); "
                              "continuing without heartbeats")
                self.heartbeat_errors += 1
        return beat

    def _report_complete(self, job: SimJob, result: dict,
                         elapsed: float, context=None,
                         run_id=None) -> None:
        span = None
        if context is not None:
            span = self.spans.start("worker.report", context,
                                    stage="report", worker=self.name,
                                    key=job.key, run_id=run_id)
        try:
            # Transport retries reuse one request id, so a completion
            # whose acknowledgement was lost (http.drop_response) is
            # replayed server-side, not applied twice.
            self.transport.post_json("/complete", {
                "key": job.key,
                "worker": self.name,
                "result": result,
                "elapsed": elapsed,
            })
            self.jobs_done += 1
            if span is not None:
                self.spans.finish(span)
            self._say(f"completed {job.label} in {elapsed:.2f}s")
        except ServiceUnavailable as error:
            # The lease will expire and the job re-queue; our local
            # cache keeps the work so the re-execution is instant here.
            if span is not None:
                self.spans.finish(span, status="error")
            self._say(f"could not report completion ({error})")

    def _report_fail(self, key, reason: str, context=None,
                     run_id=None) -> None:
        self.jobs_failed += 1
        self._say(f"job failed: {reason}")
        if key is None:
            return
        span = None
        if context is not None:
            span = self.spans.start("worker.report", context,
                                    stage="report", worker=self.name,
                                    key=key, run_id=run_id)
        try:
            self.transport.post_json("/fail", {
                "key": key, "worker": self.name, "reason": reason,
            })
            if span is not None:
                self.spans.finish(span)
        except ServiceUnavailable:
            if span is not None:
                self.spans.finish(span, status="error")
