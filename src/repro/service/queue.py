"""Durable, lease-based job queue backing the simulation service.

The queue is the service's single source of scheduling truth: every
state transition — submit, claim, complete, fail, re-queue — appends one
JSON line to ``queue.jsonl`` in the service data directory, exactly the
journal-then-state discipline of the run telemetry's ``events.jsonl``
(see ``docs/OBSERVABILITY.md``).  A restarted server replays the journal
and resumes pending work; jobs that were *running* when the server died
are re-queued on replay, because their workers have nobody to report
completion to anymore.

Leases make the pull model crash-safe.  A claim hands the worker the
job plus a lease deadline; heartbeats renew the lease (renewals are
deliberately *not* journaled — they are high-rate and carry no
scheduling information a restart could use).  When a worker dies
mid-job, its lease expires and the next :meth:`JobQueue.expire` sweep —
run lazily on every claim and every ``/queue`` scrape, no background
thread — moves the job back to pending.  Completions are accepted from
any worker whenever the entry is not already done: results are
content-addressed, so a "late" completion from a presumed-dead worker
is identical to the re-queued one and harmless to accept.

Results do not live here.  ``complete`` records only that the job
finished and how long it took; the result document itself goes to the
sharded :class:`~repro.runtime.cache.ResultCache`, which is the durable
result store the ``GET /jobs/<key>`` endpoint reads.

A full disk degrades the queue instead of corrupting it.  Journal
appends are fsync'd; when one fails (real ``ENOSPC`` or an injected
``disk.full`` fault) the queue flips :attr:`read_only`: submissions
raise :class:`QueueReadOnly` (the server answers 503 + ``Retry-After``)
and claims return ``None`` after rolling their transition back, so no
state transition is ever acknowledged that a restart could not replay.
Completions and failures still apply in memory — their durable half is
the result cache, written *before* the journal line, so a restart
re-queues the entry, the next claim hits the worker's cache, and the
journal heals.  Every successful append clears :attr:`read_only`, so
recovery is automatic once the disk drains.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional

#: Bump on any change to the journal's record shapes.
QUEUE_SCHEMA_VERSION = 1

#: Seconds a claimed job may go without a heartbeat before its lease
#: expires and the job is re-queued.
DEFAULT_LEASE_SECONDS = 60.0

#: The states a queue entry moves through.
ENTRY_STATES = ("pending", "running", "done", "failed")


class QueueReadOnly(RuntimeError):
    """The journal cannot be written; mutations are refused for now."""


@dataclasses.dataclass
class QueueEntry:
    """One submitted job and its scheduling state."""

    key: str
    payload: dict
    index: int
    state: str = "pending"
    submitted: float = 0.0
    worker: Optional[str] = None
    lease_deadline: Optional[float] = None
    claims: int = 0
    requeues: int = 0
    elapsed: Optional[float] = None
    reason: Optional[str] = None
    #: Correlation id of the submitting run, echoed on every journal
    #: line for this entry so service records join to run manifests.
    run_id: Optional[str] = None
    #: The submitting client's traceparent header (distributed tracing);
    #: handed to the claiming worker so its spans join the same trace.
    trace: Optional[str] = None
    #: When the *current* claim was granted (journal ``claim`` ts).
    claimed: Optional[float] = None
    #: When the entry went terminal (journal ``complete``/``fail`` ts).
    finished: Optional[float] = None

    def public(self, now: Optional[float] = None) -> dict:
        """The ``GET /jobs/<key>`` / ``GET /queue`` view of this entry."""
        now = time.time() if now is None else now
        record = {
            "key": self.key,
            "index": self.index,
            "state": self.state,
            "label": _payload_label(self.payload),
            "age_seconds": max(0.0, now - self.submitted),
            "claims": self.claims,
            "requeues": self.requeues,
        }
        if self.worker is not None:
            record["worker"] = self.worker
        if self.state == "running" and self.lease_deadline is not None:
            record["lease_remaining"] = self.lease_deadline - now
        if self.elapsed is not None:
            record["elapsed"] = self.elapsed
        if self.reason is not None:
            record["reason"] = self.reason
        if self.run_id is not None:
            record["run_id"] = self.run_id
        if self.trace is not None:
            record["trace"] = self.trace
        times = {"submitted": self.submitted}
        if self.claimed is not None:
            times["claimed"] = self.claimed
        if self.finished is not None:
            times["finished"] = self.finished
        record["times"] = times
        return record


def _payload_label(payload: dict) -> str:
    benchmark = payload.get("benchmark", "?")
    kind = (payload.get("spec") or {}).get("kind", "?")
    return f"{benchmark} × {kind}"


class JobQueue:
    """Journaled in-memory queue with lease-based claims.

    Thread-safe: the HTTP server handles each request on its own
    thread, so every public method takes the queue lock.  Persistence
    is append-only; the in-memory dict is always rebuilt from the
    journal at startup, torn tail lines (a server killed mid-append)
    are skipped exactly like the resume journal's replay.
    """

    def __init__(self, directory: str,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 faults=None) -> None:
        self.directory = os.fspath(directory)
        self.lease_seconds = float(lease_seconds)
        self.journal_path = os.path.join(self.directory, "queue.jsonl")
        self._lock = threading.RLock()
        self._entries: Dict[str, QueueEntry] = {}
        self._order: List[str] = []  # submission order
        self.write_errors = 0
        #: Optional :class:`~repro.resilience.FaultPlan`; ``disk.full``
        #: specs with ``path="queue"`` fail the append at the matched
        #: ordinal, exactly like a real ``ENOSPC``.
        self.faults = faults
        #: True after a journal write failure; cleared by the next
        #: successful append.  While set, submissions are refused and
        #: claims roll back — see the module docstring.
        self.read_only = False
        self._appends = 0  # lifetime append ordinal (disk.full matching)
        #: Optional transition callback ``(event, entry)``, invoked
        #: fail-soft after claim/complete/fail/requeue journal writes —
        #: the service server reconstructs queue-phase spans here from
        #: the entry's journal-derived timestamps.
        self.observer = None
        os.makedirs(self.directory, exist_ok=True)
        self._replay()

    # ------------------------------------------------------------------
    # Journal.
    # ------------------------------------------------------------------
    def _append(self, event: str, key: str, **fields) -> bool:
        """Journal one line; True on success.  A failed append (real
        ``OSError`` or injected ``disk.full``) flips :attr:`read_only`;
        callers decide whether their transition must roll back."""
        for optional in ("run_id", "trace"):
            if fields.get(optional) is None:
                fields.pop(optional, None)
        record = {"event": event, "key": key, "ts": time.time(),
                  "schema": QUEUE_SCHEMA_VERSION}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        ordinal = self._appends
        self._appends += 1
        try:
            if (self.faults is not None
                    and self.faults.fire("disk.full", index=ordinal,
                                         attempt=None,
                                         path="queue") is not None):
                raise OSError(28, "injected disk.full")  # ENOSPC
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            self.write_errors += 1
            self.read_only = True
            return False
        self.read_only = False
        return True

    def _replay(self) -> None:
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a killed server
            self._apply(record)
        # Jobs that were running when the server died: their workers
        # can no longer report back, so put them back in line.
        for key in list(self._order):
            entry = self._entries[key]
            if entry.state == "running":
                entry.state = "pending"
                entry.worker = None
                entry.lease_deadline = None
                entry.requeues += 1
                self._append("requeue", key, reason="server restart",
                             requeues=entry.requeues, run_id=entry.run_id)

    def _apply(self, record: dict) -> None:
        event = record.get("event")
        key = record.get("key")
        if not isinstance(key, str):
            return
        entry = self._entries.get(key)
        if event == "submit":
            if entry is None:
                payload = record.get("payload")
                if not isinstance(payload, dict):
                    return
                entry = QueueEntry(
                    key=key, payload=payload, index=len(self._order),
                    submitted=record.get("ts", 0.0),
                    run_id=record.get("run_id"),
                    trace=record.get("trace"),
                )
                self._entries[key] = entry
                self._order.append(key)
            return
        if entry is None:
            return  # transition for a job we never saw submitted
        if event == "claim":
            entry.state = "running"
            entry.worker = record.get("worker")
            entry.claims += 1
            entry.claimed = record.get("ts", 0.0)
            entry.lease_deadline = record.get("ts", 0.0) + self.lease_seconds
        elif event == "complete":
            if entry.state == "done":
                return  # duplicated complete line: first one wins
            entry.state = "done"
            entry.worker = record.get("worker", entry.worker)
            entry.elapsed = record.get("elapsed")
            entry.finished = record.get("ts")
            entry.lease_deadline = None
        elif event == "fail":
            if entry.state == "done":
                return  # a completed job cannot retroactively fail
            entry.state = "failed"
            entry.worker = record.get("worker", entry.worker)
            entry.reason = record.get("reason")
            entry.finished = record.get("ts")
            entry.lease_deadline = None
        elif event == "requeue":
            if entry.state in ("done", "failed"):
                return  # terminal states never re-enter the queue
            entry.state = "pending"
            entry.worker = None
            entry.lease_deadline = None
            entry.requeues = record.get("requeues", entry.requeues + 1)

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------
    def submit(self, key: str, payload: dict,
               run_id: Optional[str] = None,
               trace: Optional[str] = None) -> tuple:
        """Enqueue a job; idempotent.  Returns ``(entry, created)``.

        A duplicate key — same cell submitted twice, by any client —
        returns the existing entry in whatever state it has reached, so
        concurrent identical sweeps coalesce onto one computation.
        ``run_id`` correlates the entry (and its journal lines) with
        the submitting run's manifest; ``trace`` is the submitter's
        traceparent header, journaled and handed to the claiming worker
        so every hop's spans join one trace.  A duplicate submission
        keeps the original entry's ids.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry, False
            entry = QueueEntry(
                key=key, payload=payload, index=len(self._order),
                submitted=time.time(), run_id=run_id, trace=trace,
            )
            self._entries[key] = entry
            self._order.append(key)
            if not self._append("submit", key, payload=payload,
                                index=entry.index, run_id=entry.run_id,
                                trace=entry.trace):
                # Never acknowledge a submission a restart would lose:
                # roll the entry back and let the server shed the write.
                del self._entries[key]
                self._order.pop()
                raise QueueReadOnly(
                    "journal write failed; queue is read-only")
            return entry, True

    def _notify(self, event: str, entry: QueueEntry) -> None:
        """Tell the observer about a transition (never let it raise)."""
        if self.observer is None:
            return
        try:
            self.observer(event, entry)
        except Exception:
            pass  # observers are passengers, not schedulers

    def claim(self, worker: str) -> Optional[QueueEntry]:
        """Lease the oldest pending job to ``worker`` (``None`` if idle)."""
        with self._lock:
            self.expire()
            for key in self._order:
                entry = self._entries[key]
                if entry.state != "pending":
                    continue
                entry.state = "running"
                entry.worker = worker
                entry.claims += 1
                entry.claimed = time.time()
                entry.lease_deadline = entry.claimed + self.lease_seconds
                if not self._append("claim", key, worker=worker,
                                    claims=entry.claims,
                                    run_id=entry.run_id):
                    # Don't hand out new leases the journal can't see:
                    # roll back and answer "idle".  The worker polls
                    # again, and each poll re-probes the disk.
                    entry.state = "pending"
                    entry.worker = None
                    entry.claims -= 1
                    entry.claimed = None
                    entry.lease_deadline = None
                    return None
                self._notify("claim", entry)
                return entry
            return None

    def renew(self, key: str, worker: Optional[str] = None) -> bool:
        """Extend a running job's lease (heartbeat path; not journaled)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state != "running":
                return False
            if worker is not None and entry.worker != worker:
                return False
            entry.lease_deadline = time.time() + self.lease_seconds
            return True

    def complete(self, key: str, worker: Optional[str] = None,
                 elapsed: Optional[float] = None) -> bool:
        """Mark a job done.  Accepted whenever the entry is not done yet.

        Content-addressed results make completion idempotent and
        worker-agnostic: a late completion from a worker whose lease
        already expired carries the same bytes the re-queued execution
        would produce, so refusing it would only waste work.

        Applies even while :attr:`read_only` — the durable half of a
        completion is the result cache (written before the journal
        line), so the in-memory transition is safe: a restart re-queues
        the entry and the next claim is served from cache instantly.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state == "done":
                return False
            entry.state = "done"
            entry.worker = worker or entry.worker
            entry.elapsed = elapsed
            entry.finished = time.time()
            entry.lease_deadline = None
            entry.reason = None
            self._append("complete", key, worker=entry.worker,
                         elapsed=elapsed, run_id=entry.run_id)
            self._notify("complete", entry)
            return True

    def fail(self, key: str, reason: str,
             worker: Optional[str] = None) -> bool:
        """Mark a job failed (deterministic simulation error)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state == "done":
                return False
            entry.state = "failed"
            entry.worker = worker or entry.worker
            entry.reason = reason
            entry.finished = time.time()
            entry.lease_deadline = None
            self._append("fail", key, worker=entry.worker, reason=reason,
                         run_id=entry.run_id)
            self._notify("fail", entry)
            return True

    def expire(self, now: Optional[float] = None) -> int:
        """Re-queue every running job whose lease has lapsed.

        Called lazily from :meth:`claim` and the ``/queue`` endpoint —
        the queue needs no background thread, it just needs traffic,
        and an idle queue has nothing to expire that matters.
        """
        now = time.time() if now is None else now
        expired = 0
        with self._lock:
            for key in self._order:
                entry = self._entries[key]
                if (entry.state == "running"
                        and entry.lease_deadline is not None
                        and entry.lease_deadline < now):
                    entry.state = "pending"
                    entry.worker = None
                    entry.lease_deadline = None
                    entry.requeues += 1
                    self._append("requeue", key, reason="lease expired",
                                 requeues=entry.requeues,
                                 run_id=entry.run_id)
                    self._notify("requeue", entry)
                    expired += 1
        return expired

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[QueueEntry]:
        with self._lock:
            return self._entries.get(key)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in ENTRY_STATES}
            for entry in self._entries.values():
                counts[entry.state] = counts.get(entry.state, 0) + 1
            return counts

    def snapshot(self) -> dict:
        """The ``GET /queue`` document: depth, ages, per-state counts."""
        with self._lock:
            self.expire()
            now = time.time()
            counts = self.counts()
            pending = [self._entries[key] for key in self._order
                       if self._entries[key].state == "pending"]
            oldest = max(
                (now - entry.submitted for entry in pending), default=0.0)
            return {
                "schema": QUEUE_SCHEMA_VERSION,
                "generated": now,
                "depth": counts["pending"] + counts["running"],
                "counts": counts,
                "oldest_pending_seconds": oldest,
                "lease_seconds": self.lease_seconds,
                "write_errors": self.write_errors,
                "read_only": self.read_only,
                "entries": [self._entries[key].public(now)
                            for key in self._order],
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
