"""Client side of the simulation service: submit cells, fetch results.

``repro submit`` and ``repro fetch`` are thin shells over these
helpers.  The client computes the same content keys the server does
(``SimJob.key``), so a submission is idempotent end-to-end: submitting
the same sweep twice queues nothing the second time, and a sweep whose
cells are already cached never queues at all.

:func:`fetch_results` polls ``GET /jobs/<key>`` until every key is
terminal and returns :class:`~repro.core.simulator.SimResult` objects
in submission order — the same order, and byte-for-byte the same
results, a local :func:`~repro.runtime.run_jobs` call would produce.

Both paths ride the hardened
:class:`~repro.service.transport.ServiceTransport`: submissions retry
idempotently under one ``X-Repro-Request-Id`` per job, 429 shedding is
honored via ``Retry-After``, 5xx bursts retry within a bounded budget,
and the fetch loop additionally rides out whole server restarts
(``server.crash``) with a consecutive-outage budget on top of the
transport's per-call retries — none of which ever reaches the user as
a traceback.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.core.simulator import SimResult
from repro.obs.manifest import new_run_id
from repro.obs.spans import SpanRecorder, TraceContext
from repro.runtime.job import SimJob
from repro.runtime.settings import resolve_trace_dir
from repro.service.transport import ServiceTransport
from repro.service.worker import (
    REQUEST_TIMEOUT,
    ServiceUnavailable,
    _post_json,
)

#: Default seconds between result polls.
DEFAULT_FETCH_INTERVAL = 0.5

#: Consecutive poll sweeps that may end in :class:`ServiceUnavailable`
#: (each already a full transport retry budget) before
#: :func:`fetch_results` gives up — sized to ride out a server
#: SIGKILL + journal-replay restart.
FETCH_OUTAGE_BUDGET = 8


def _ship_spans(url: str, recorder: SpanRecorder) -> None:
    """POST buffered client spans to the service (best-effort)."""
    records = recorder.drain()
    if not records:
        return
    try:
        _post_json(url, "/spans", {"spans": records, "worker": "client"},
                   timeout=5.0)
    except ServiceUnavailable:
        pass


class JobRejected(ValueError):
    """The server refused a submission (validation failure)."""


class RemoteJobFailed(RuntimeError):
    """A job reached the ``failed`` state on the service."""


def _get_json(url: str, path: str,
              timeout: float = REQUEST_TIMEOUT) -> Optional[dict]:
    """One GET round trip; ``None`` on 404, raises on connection loss."""
    try:
        with urllib.request.urlopen(
            f"{url.rstrip('/')}{path}", timeout=timeout
        ) as response:
            payload = json.load(response)
    except urllib.error.HTTPError as error:
        if error.code == 404:
            return None
        raise ServiceUnavailable(f"{path}: HTTP {error.code}") from None
    except (OSError, ValueError) as error:
        raise ServiceUnavailable(f"{path}: {error}") from None
    return payload if isinstance(payload, dict) else None


def submit_jobs(url: str, jobs: Sequence[SimJob],
                stream=None, run_id: Optional[str] = None,
                trace_contexts: Optional[Dict[str, str]] = None,
                ) -> Dict[str, str]:
    """Submit every job; returns ``{key: state}`` as acknowledged.

    Every submission in one call shares one ``run_id`` correlation id
    (minted here when the caller has none), which the service journals
    with the entry — the cross-host analogue of the engine's manifest
    stamp.  Each job additionally mints a fresh distributed-trace root
    (subject to ``REPRO_TRACE_SAMPLE``); the context travels in the
    payload's ``trace`` field and the ``traceparent`` header, and the
    submission round trip itself becomes the trace's root span.  Pass a
    dict as ``trace_contexts`` to receive ``{key: traceparent}`` for the
    sampled jobs.  Raises :class:`JobRejected` on a validation failure
    (the sweep is malformed — pushing on would just fail every cell) and
    :class:`ServiceUnavailable` when the server cannot be reached.
    """
    run_id = run_id or new_run_id()
    states: Dict[str, str] = {}
    recorder = SpanRecorder(directory=resolve_trace_dir(), keep=True,
                            run_id=run_id)
    transport = ServiceTransport(url, name=f"submit:{run_id}")
    try:
        for job in jobs:
            if not job.cacheable:
                raise JobRejected(
                    f"ad-hoc Program job {job.label!r} has no canonical form "
                    "and cannot be submitted to a service"
                )
            payload = dict(job.canonical())
            payload["run_id"] = run_id
            context = TraceContext.root()
            span = None
            headers = None
            if context.sampled:
                header = context.to_header()
                payload["trace"] = header
                headers = {"traceparent": header}
                if trace_contexts is not None:
                    trace_contexts[job.key] = header
                span = recorder.start("client.submit", context,
                                      stage="submit", root=True,
                                      key=job.key, label=job.label)
            response = transport.post_json("/jobs", payload,
                                           headers=headers)
            if "error" in response:
                if span is not None:
                    recorder.finish(span, status="error")
                raise JobRejected(f"{job.label}: {response['error']}")
            states[job.key] = response.get("state", "pending")
            if span is not None:
                recorder.finish(span, state=states[job.key],
                                cached=bool(response.get("cached")))
            if stream is not None:
                tag = "cached" if response.get("cached") else states[job.key]
                print(f"submitted {job.label}: {tag}", file=stream)
    finally:
        _ship_spans(url, recorder)
    return states


def fetch_results(
    url: str,
    jobs: Sequence[SimJob],
    timeout: Optional[float] = None,
    poll_interval: float = DEFAULT_FETCH_INTERVAL,
    stream=None,
    _sleep=time.sleep,
) -> List[SimResult]:
    """Poll until every job is terminal; results in submission order.

    Raises :class:`RemoteJobFailed` if any job fails on the service,
    :class:`TimeoutError` when ``timeout`` seconds pass with jobs still
    in flight, and :class:`ServiceUnavailable` on connection loss.
    """
    deadline = (time.monotonic() + timeout) if timeout is not None else None
    results: Dict[str, SimResult] = {}
    failed: Dict[str, str] = {}
    keys = [job.key for job in jobs]
    announced: Dict[str, str] = {}
    recorder = SpanRecorder(directory=resolve_trace_dir(), keep=True)
    transport = ServiceTransport(url, name="fetch", _sleep=_sleep)
    outages = 0
    poll_started = time.time()
    try:
        while True:
            for job, key in zip(jobs, keys):
                if key in results or key in failed:
                    continue
                try:
                    document = transport.get_json(f"/jobs/{key}")
                except ServiceUnavailable:
                    # The transport already spent a full retry budget;
                    # tolerate a bounded run of such sweeps so a server
                    # restart (journal replay included) doesn't abort a
                    # fetch that would succeed seconds later.
                    outages += 1
                    if outages > FETCH_OUTAGE_BUDGET:
                        raise
                    if stream is not None and outages == 1:
                        print("service unreachable; retrying...",
                              file=stream)
                    break
                outages = 0
                if document is None:
                    continue  # not submitted yet (or evicted): keep polling
                state = document.get("state")
                if stream is not None and announced.get(key) != state:
                    announced[key] = state
                    print(f"{job.label}: {state}", file=stream)
                if state == "done" and document.get("result") is not None:
                    results[key] = SimResult.from_dict(document["result"])
                    _fetch_span(recorder, document, key, poll_started)
                elif state == "failed":
                    failed[key] = document.get("reason") or "unknown failure"
                    _fetch_span(recorder, document, key, poll_started,
                                status="error")
            if failed:
                details = "; ".join(
                    f"{job.label}: {failed[key]}"
                    for job, key in zip(jobs, keys) if key in failed)
                raise RemoteJobFailed(details)
            if len(results) == len(keys):
                return [results[key] for key in keys]
            if deadline is not None and time.monotonic() > deadline:
                missing = [job.label for job, key in zip(jobs, keys)
                           if key not in results]
                raise TimeoutError(
                    f"{len(missing)} job(s) still in flight after {timeout}s: "
                    + ", ".join(missing[:5]))
            _sleep(poll_interval)
    finally:
        _ship_spans(url, recorder)


def _fetch_span(recorder: SpanRecorder, document: dict, key: str,
                poll_started: float, status: str = "ok") -> None:
    """Record the client-side wait for one job reaching a terminal
    state — from the first poll of this :func:`fetch_results` call to
    the poll that observed it done (untraced jobs record nothing)."""
    context = TraceContext.from_header(document.get("trace"))
    if context is None or not context.sampled:
        return
    recorder.emit("client.fetch", context, poll_started, time.time(),
                  stage="fetch", status=status, key=key,
                  state=document.get("state"))


def queue_snapshot(url: str) -> dict:
    """The service's ``GET /queue`` document."""
    document = _get_json(url, "/queue")
    if document is None:
        raise ServiceUnavailable("/queue: not found")
    return document


def latency_breakdown(url: str, jobs: Sequence[SimJob]) -> Optional[dict]:
    """Mean per-segment latency (seconds) across ``jobs``.

    Reads each job's ``times`` (queue-journal timestamps exposed by
    ``GET /jobs/<key>``) and averages the submitted→claimed (queue
    wait), claimed→done (execution + report), and submitted→done
    segments.  Returns ``None`` when no job carries all three
    timestamps — e.g. the whole sweep was served from cache and never
    touched the queue.
    """
    waits: List[float] = []
    runs: List[float] = []
    totals: List[float] = []
    for job in jobs:
        try:
            document = _get_json(url, f"/jobs/{job.key}")
        except ServiceUnavailable:
            return None
        times = (document or {}).get("times") or {}
        stamps = [times.get(name)
                  for name in ("submitted", "claimed", "finished")]
        if not all(isinstance(value, (int, float)) for value in stamps):
            continue
        submitted, claimed, finished = stamps
        waits.append(max(0.0, claimed - submitted))
        runs.append(max(0.0, finished - claimed))
        totals.append(max(0.0, finished - submitted))
    if not totals:
        return None
    count = len(totals)
    return {
        "jobs": count,
        "queue_wait": sum(waits) / count,
        "execute": sum(runs) / count,
        "total": sum(totals) / count,
    }


def render_latency(breakdown: Optional[dict]) -> str:
    """One-line latency summary for the CLI (empty when no data)."""
    if not breakdown:
        return ""
    return (
        f"latency: {breakdown['jobs']} job(s) queued, "
        f"queue-wait {breakdown['queue_wait']:.2f}s, "
        f"execute {breakdown['execute']:.2f}s, "
        f"submit->done {breakdown['total']:.2f}s (mean)"
    )
