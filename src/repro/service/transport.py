"""Hardened HTTP transport shared by service clients and workers.

:class:`ServiceTransport` wraps the one-shot helpers in
:mod:`repro.service.worker` with the retry discipline the chaos suite
demands (see ``docs/RESILIENCE.md``):

* **Idempotent retries keyed on ``X-Repro-Request-Id``.**  One logical
  operation mints one request id and reuses it across every retry; the
  server's replay cache answers a retried mutation with the original
  response instead of applying it twice.  This is what makes
  ``http.drop_response`` — effect applied, acknowledgement lost —
  survivable without duplicate cache-store effects.
* **Per-endpoint circuit breakers** (:class:`CircuitBreaker`) with
  deterministic half-open probing: a flapping ``/complete`` does not
  take ``/claim`` down with it, and two transports never probe in
  lock-step because cooldowns are jittered by transport name.
* **Deterministic backoff jitter** — ``deterministic_jitter`` keyed on
  ``(name, path)``; a fleet restarting after ``server.crash`` spreads
  its reconnects without any RNG state.
* **429 + ``Retry-After`` honoured** as load shedding, not failure:
  the transport sleeps the server-suggested delay and tries again
  without tripping the breaker (the server is healthy — that is the
  point of shedding).
* **Deadline propagation**: an absolute deadline rides the
  ``X-Repro-Deadline`` header so the server can decline work the
  client has already given up on (a claim leased to a dead client
  would just burn a lease timeout).

Errors collapse to the existing :class:`ServiceUnavailable` once the
bounded budget is spent, so every current caller's error handling keeps
working.  Torn responses (``http.truncate_body``) surface as
``http.client.IncompleteRead`` — an ``HTTPException``, *not* an
``OSError`` — which this transport classifies as a connection failure.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.error
import urllib.request
import uuid
from typing import Dict, Optional

from repro.resilience.retry import CircuitBreaker, deterministic_jitter

#: Seconds allowed for one HTTP round trip (mirrors the worker module).
REQUEST_TIMEOUT = 10.0

#: Default retry budget per logical request.
DEFAULT_RETRIES = 4

#: Default backoff base seconds (doubles per attempt, jittered ±25%).
DEFAULT_BACKOFF = 0.25

#: Ceiling on a server-suggested ``Retry-After`` sleep — a confused or
#: hostile header must not park a worker for minutes.
MAX_RETRY_AFTER = 5.0

#: Errors treated as "the connection failed mid-flight": safe to retry
#: when the request is idempotent.  ``HTTPException`` covers
#: ``IncompleteRead`` / ``RemoteDisconnected`` from torn responses.
_CONNECTION_ERRORS = (OSError, socket.timeout, http.client.HTTPException,
                      ValueError)


def _canonical_unavailable():
    """The worker module's :class:`ServiceUnavailable` (lazy import —
    the worker module imports this one for :class:`ServiceTransport`)."""
    from repro.service.worker import ServiceUnavailable as canonical
    return canonical


def _retry_after_seconds(error: urllib.error.HTTPError,
                         fallback: float) -> float:
    """The server's ``Retry-After`` (seconds form), bounded sane."""
    raw = error.headers.get("Retry-After") if error.headers else None
    try:
        seconds = float(raw)
    except (TypeError, ValueError):
        return fallback
    return min(max(0.0, seconds), MAX_RETRY_AFTER)


class ServiceTransport:
    """Retrying, breaker-gated JSON-over-HTTP client for one service.

    One instance per agent (worker loop, submit/fetch client); all
    state — breakers, counters, request-id minting — is per-instance,
    and the jitter/probe schedule is a pure function of ``name``, so a
    named transport behaves identically run to run.
    """

    def __init__(self, url: str, name: str = "client",
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 breaker_threshold: int = 4,
                 breaker_cooldown: float = 0.5,
                 _sleep=time.sleep) -> None:
        self.url = url.rstrip("/")
        self.name = name
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._sleep = _sleep
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.attempts = 0
        self.retried = 0
        self.rate_limited = 0
        self.breaker_rejections = 0
        self.deadline_expired = 0

    # ------------------------------------------------------------------
    def breaker(self, path: str) -> CircuitBreaker:
        gate = self._breakers.get(path)
        if gate is None:
            gate = CircuitBreaker(
                name=f"{self.name}:{path}",
                threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
            )
            self._breakers[path] = gate
        return gate

    def counters(self) -> dict:
        return {
            "attempts": self.attempts,
            "retried": self.retried,
            "rate_limited": self.rate_limited,
            "breaker_rejections": self.breaker_rejections,
            "deadline_expired": self.deadline_expired,
            "breaker_opens": sum(b.opens for b in self._breakers.values()),
        }

    # ------------------------------------------------------------------
    def post_json(self, path: str, document: dict,
                  timeout: float = REQUEST_TIMEOUT,
                  headers: Optional[dict] = None,
                  idempotent: bool = True,
                  deadline: Optional[float] = None) -> dict:
        """POST with bounded retries; the full hardening stack applies.

        Returns the response document (error documents carry a
        ``status`` field, like the one-shot helper); raises
        :class:`ServiceUnavailable` once the retry budget is spent.
        """
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        merged = {"Content-Type": "application/json",
                  "X-Repro-Request-Id": uuid.uuid4().hex[:16]}
        if headers:
            merged.update(headers)
        if deadline is not None:
            merged["X-Repro-Deadline"] = f"{deadline:.3f}"
        return self._round_trips("POST", path, body, merged, timeout,
                                 idempotent, deadline)

    def get_json(self, path: str, timeout: float = REQUEST_TIMEOUT,
                 deadline: Optional[float] = None) -> Optional[dict]:
        """GET with the same retry/breaker stack; ``None`` on 404."""
        headers = {"X-Repro-Request-Id": uuid.uuid4().hex[:16]}
        payload = self._round_trips("GET", path, None, headers, timeout,
                                    True, deadline)
        if isinstance(payload, dict) and payload.get("status") == 404:
            return None
        return payload

    # ------------------------------------------------------------------
    def _round_trips(self, method: str, path: str, body, headers: dict,
                     timeout: float, idempotent: bool,
                     deadline: Optional[float]) -> dict:
        unavailable = _canonical_unavailable()
        gate = self.breaker(path)
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            if deadline is not None and time.time() >= deadline:
                self.deadline_expired += 1
                raise unavailable(f"{path}: deadline exceeded")
            if not gate.allow():
                self.breaker_rejections += 1
                last_error = "circuit open"
                self._pause(path, attempt, floor=gate.probe_in())
                continue
            self.attempts += 1
            try:
                status, payload = self._once(method, path, body, headers,
                                             timeout)
            except urllib.error.HTTPError as error:
                status = error.code
                payload = self._error_payload(error)
                if status == 429:
                    # Load shedding: the server is healthy and told us
                    # when to come back.  Not a breaker failure.
                    gate.record_success()
                    self.rate_limited += 1
                    if attempt == self.retries:
                        raise unavailable(
                            f"{path}: still shedding (HTTP 429) after "
                            f"{self.retries + 1} attempts") from None
                    self.retried += 1
                    self._sleep(_retry_after_seconds(error, self.backoff))
                    continue
                if status >= 500:
                    gate.record_failure()
                    last_error = f"HTTP {status}"
                    if attempt == self.retries:
                        raise unavailable(
                            f"{path}: HTTP {status} after "
                            f"{self.retries + 1} attempts") from None
                    self.retried += 1
                    self._pause(path, attempt)
                    continue
                # Plain 4xx: a real answer, not an outage.
                gate.record_success()
                return payload
            except _CONNECTION_ERRORS as error:
                gate.record_failure()
                last_error = f"{type(error).__name__}: {error}"
                if not idempotent or attempt == self.retries:
                    raise unavailable(f"{path}: {last_error}") from None
                self.retried += 1
                self._pause(path, attempt)
                continue
            gate.record_success()
            return payload
        raise unavailable(f"{path}: {last_error or 'retry budget spent'}")

    def _once(self, method: str, path: str, body, headers: dict,
              timeout: float):
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method)
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.load(response)
        if not isinstance(payload, dict):
            raise ValueError("non-object response")
        return response.status, payload

    @staticmethod
    def _error_payload(error: urllib.error.HTTPError) -> dict:
        try:
            payload = json.load(error)
        except Exception:
            payload = {"error": str(error)}
        if not isinstance(payload, dict):
            payload = {"error": str(error)}
        payload.setdefault("status", error.code)
        return payload

    def _pause(self, path: str, attempt: int, floor: float = 0.0) -> None:
        base = self.backoff * (2 ** attempt)
        delay = deterministic_jitter(f"{self.name}:{path}", attempt, base)
        self._sleep(max(delay, min(floor, MAX_RETRY_AFTER)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceTransport({self.url!r}, name={self.name!r})"
