"""Chaos soak for the service tier: ``repro chaos``.

Pushes a pinned job matrix through a real server + worker-fleet
deployment while a combined, seeded :class:`~repro.resilience.FaultPlan`
attacks every layer at once:

* the **chaos proxy** (:class:`~repro.resilience.ChaosProxy`) between
  clients/workers and the server drops responses after applying them,
  delays requests, answers 5xx bursts, and tears response bodies;
* the **server** is SIGKILLed mid-run (``server.crash`` specs matched
  on the queue's done count) and restarted on the same port and data
  directory — journal replay must resume the run;
* **workers** are SIGKILLed (``worker.crash`` specs, same trigger) and
  replaced — lease expiry must re-queue their jobs;
* the **journal** suffers an injected ``disk.full`` append failure —
  the queue must degrade to read-only, never corrupt;
* **backpressure** is proven up front: more jobs than ``max_depth``
  are thrown at an idle server and the overflow must come back 429 +
  ``Retry-After``.

The soak then asserts what the ROADMAP actually needs: every job
completes, results are byte-identical to an inline fault-free run, the
shared cache holds no torn entries, and every child process is reaped.
Determinism discipline matches PR 4's engine chaos suite: the fault
plan is content-addressed, triggers key off queue state (done counts,
request ordinals), and the job matrix is pinned, so a failing soak
replays.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.chaosproxy import ChaosProxy
from repro.resilience.faults import FaultPlan, FaultSpec

#: Seconds to wait for a freshly spawned server to answer ``/healthz``.
SERVER_START_TIMEOUT = 20.0

#: Seconds the whole soak may run before it is declared wedged.
SOAK_TIMEOUT = 300.0


def _canonical_bytes(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _free_port() -> int:
    """A port the OS just handed out (the server restarts onto it;
    ``HTTPServer`` sets ``allow_reuse_address`` so rebinding works)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def build_chaos_plan(seed: int, njobs: int, nrequests: int = 120,
                     drop_rate: float = 0.12,
                     server_crashes: int = 1,
                     worker_crashes: int = 2) -> FaultPlan:
    """The combined, seeded fault plan the soak runs under.

    One plan describes every layer's faults; each component evaluates
    only its own sites (site names disambiguate), and the harness
    interprets ``server.crash`` / ``worker.crash`` specs as SIGKILL
    triggers matched on the queue's done count.
    """
    specs: List[FaultSpec] = list(
        FaultPlan.http_scatter(seed, nrequests, rate=drop_rate,
                               sites=("http.drop_response",)).specs)
    # One slow link and one torn body, pinned past the submit burst so
    # they land on worker-protocol traffic.
    specs.append(FaultSpec(site="http.delay", index=None, attempt=None,
                           seconds=0.2, times=1))
    specs.append(FaultSpec(site="http.truncate_body", index=None,
                           attempt=None, times=1))
    # A 5xx burst: three consecutive requests answered 503 without
    # reaching the server (any-request specs drain their budget on the
    # first three matches, which makes the burst contiguous).
    specs.append(FaultSpec(site="http.error_5xx", index=None,
                           attempt=None, times=3))
    # SIGKILL the server once N jobs are done (mid-run), the workers a
    # little earlier/later — the harness reads these.
    for crash in range(server_crashes):
        specs.append(FaultSpec(site="server.crash",
                               index=max(1, njobs // 3) + crash,
                               attempt=None))
    for crash in range(worker_crashes):
        specs.append(FaultSpec(site="worker.crash", index=1 + crash,
                               attempt=None))
    # One journal append fails mid-run; the queue must go read-only and
    # recover on the next append, corrupting nothing.
    specs.append(FaultSpec(site="disk.full", index=njobs + 3,
                           attempt=None, path="queue"))
    return FaultPlan(specs=specs, seed=seed)


@dataclasses.dataclass
class ChaosReport:
    """What the soak did and whether every invariant held."""

    plan_key: str = ""
    jobs: int = 0
    elapsed: float = 0.0
    checks: List[Tuple[str, bool, str]] = dataclasses.field(
        default_factory=list)
    counters: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(passed for _name, passed, _detail in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append((name, bool(passed), detail))

    def to_dict(self) -> dict:
        return {
            "plan": self.plan_key,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
            "ok": self.ok,
            "checks": [{"name": name, "ok": passed, "detail": detail}
                       for name, passed, detail in self.checks],
            "counters": self.counters,
        }

    def render(self) -> str:
        lines = [f"chaos soak: plan {self.plan_key[:12]}… "
                 f"{self.jobs} job(s), {self.elapsed:.1f}s"]
        for name, passed, detail in self.checks:
            mark = "ok " if passed else "FAIL"
            suffix = f" — {detail}" if detail else ""
            lines.append(f"  [{mark}] {name}{suffix}")
        for name in sorted(self.counters):
            lines.append(f"  {name}: {self.counters[name]}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


class _Fleet:
    """Child-process bookkeeping: spawn, kill, reap, never leak."""

    def __init__(self, stream) -> None:
        self.stream = stream
        self.procs: List[subprocess.Popen] = []

    def spawn(self, argv: List[str], env: Dict[str, str],
              label: str) -> subprocess.Popen:
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT)
        proc.chaos_label = label  # type: ignore[attr-defined]
        self.procs.append(proc)
        return proc

    def kill(self, proc: subprocess.Popen) -> None:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

    def reap_all(self, grace: float = 10.0) -> int:
        """SIGTERM then SIGKILL every straggler; returns leak count
        (a leak = a child that survived even SIGKILL + wait)."""
        leaked = 0
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + grace
        for proc in self.procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    leaked += 1
        return leaked


def _one_shot_post(url: str, path: str, document: dict):
    """A deliberately dumb POST (no retries) for the shed phase."""
    from repro.service.worker import _post_json
    return _post_json(url, path, document)


def _get_direct(url: str, path: str) -> Optional[dict]:
    from repro.service.client import _get_json
    return _get_json(url, path, timeout=5.0)


def _wait_healthy(url: str, timeout: float = SERVER_START_TIMEOUT) -> bool:
    from repro.service.worker import ServiceUnavailable

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            document = _get_direct(url, "/healthz")
            if document and document.get("status") == "ok":
                return True
        except ServiceUnavailable:
            pass
        time.sleep(0.1)
    return False


def run_chaos_soak(
    jobs: Sequence,
    workdir: str,
    seed: int = 1234,
    workers: int = 3,
    lease_seconds: float = 4.0,
    max_depth: Optional[int] = None,
    quick: bool = False,
    stream=None,
    keep_processes: bool = False,
) -> ChaosReport:
    """Run the combined-fault soak; see the module docstring.

    ``jobs`` is the pinned :class:`SimJob` matrix (the CLI builds it
    from the usual ``--benchmarks``/``--strategies`` flags).  ``quick``
    shrinks the fleet and fault counts for CI.  Returns a
    :class:`ChaosReport`; the command exits nonzero unless every check
    passed.
    """
    from repro.service.client import (
        RemoteJobFailed,
        fetch_results,
        submit_jobs,
    )
    from repro.service.worker import ServiceUnavailable

    def log(message: str) -> None:
        if stream is not None:
            print(f"chaos: {message}", file=stream)

    jobs = list(jobs)
    njobs = len(jobs)
    if max_depth is None:
        max_depth = max(2, njobs - 3)
    plan = build_chaos_plan(
        seed, njobs,
        server_crashes=1,
        worker_crashes=1 if quick else 2,
    )
    report = ChaosReport(plan_key=plan.key, jobs=njobs)
    started = time.monotonic()

    workdir = os.fspath(workdir)
    data_dir = os.path.join(workdir, "service-data")
    cache_dir = os.path.join(workdir, "service-cache")
    plan_path = os.path.join(workdir, "chaos-plan.json")
    os.makedirs(workdir, exist_ok=True)
    with open(plan_path, "w", encoding="utf-8") as handle:
        json.dump(plan.canonical(), handle, sort_keys=True)
    log(f"plan {plan.key[:12]}… ({len(plan.specs)} spec(s)) "
        f"-> {plan_path}")

    # ------------------------------------------------------------------
    # Ground truth: the same matrix, inline, fault-free.
    # ------------------------------------------------------------------
    log(f"reference run: {njobs} job(s) inline")
    reference = {job.key: _canonical_bytes(job.run().to_dict())
                 for job in jobs}

    port = _free_port()
    server_url = f"http://127.0.0.1:{port}"
    fleet = _Fleet(stream)
    base_env = dict(os.environ)
    base_env["REPRO_CACHE_DIR"] = cache_dir
    base_env.pop("REPRO_SERVICE_URL", None)

    def spawn_server(with_faults: bool) -> subprocess.Popen:
        argv = [sys.executable, "-m", "repro", "service", data_dir,
                "--port", str(port), "--lease", str(lease_seconds),
                "--max-depth", str(max_depth)]
        if with_faults:
            argv += ["--fault-plan", plan_path]
        return fleet.spawn(argv, base_env, "server")

    def spawn_worker(index: int) -> subprocess.Popen:
        env = dict(base_env)
        # Each worker gets a private local cache: re-executions after a
        # SIGKILL land on a *different* agent and must genuinely rerun.
        env["REPRO_CACHE_DIR"] = os.path.join(
            workdir, f"worker-cache-{index}")
        argv = [sys.executable, "-m", "repro", "worker", proxy.url,
                "--name", f"chaos-w{index}", "--poll", "0.1",
                "--heartbeat-cycles", "500",
                "--max-idle", "30", "--outage-grace", "60"]
        return fleet.spawn(argv, env, f"worker-{index}")

    proxy = ChaosProxy(server_url, plan=FaultPlan.from_dict(
        plan.canonical()))
    server_proc = None
    worker_procs: List[subprocess.Popen] = []
    worker_seq = 0
    try:
        server_proc = spawn_server(with_faults=True)
        if not _wait_healthy(server_url):
            report.check("server started", False,
                         "no /healthz within timeout")
            return report
        report.check("server started", True)
        proxy.start()
        log(f"server {server_url} (pid {server_proc.pid}), "
            f"proxy {proxy.url}")

        # --------------------------------------------------------------
        # Backpressure: overflow an idle queue, demand 429+Retry-After.
        # --------------------------------------------------------------
        shed_seen = 0
        accepted = 0
        for job in jobs:
            payload = dict(job.canonical())
            try:
                response = _one_shot_post(server_url, "/jobs", payload)
            except ServiceUnavailable:
                continue
            status = response.get("status")
            if status == 429:
                shed_seen += 1
            elif "error" not in response:
                accepted += 1
        report.check(
            "backpressure sheds with 429",
            shed_seen >= max(1, njobs - max_depth - 1)
            and accepted <= max_depth,
            f"{accepted} accepted, {shed_seen} shed at depth "
            f"{max_depth}")
        log(f"shed phase: {accepted} accepted, {shed_seen} shed")

        # --------------------------------------------------------------
        # Fleet up, then (re)submit everything through the proxy until
        # every cell is acknowledged — retries ride Retry-After.
        # --------------------------------------------------------------
        nworkers = max(2, 2 if quick else workers)
        for _ in range(nworkers):
            worker_procs.append(spawn_worker(worker_seq))
            worker_seq += 1
        submitted: Dict[str, str] = {}
        submit_deadline = time.monotonic() + 60.0
        while len(submitted) < njobs:
            if time.monotonic() > submit_deadline:
                break
            for job in jobs:
                if job.key in submitted:
                    continue
                try:
                    submitted.update(
                        submit_jobs(proxy.url, [job], run_id="chaos"))
                except (ServiceUnavailable, ValueError):
                    time.sleep(0.2)  # shed or outage: queue will drain
        report.check("all jobs acknowledged",
                     len(submitted) == njobs,
                     f"{len(submitted)}/{njobs}")

        # --------------------------------------------------------------
        # Monitor: fire the crash specs as the done count climbs.  A
        # spec's ``index`` is a done-count *threshold* (>=), not an
        # exact match — fast jobs can jump the count several steps
        # between polls and must not let a crash escape.
        # --------------------------------------------------------------
        soak_deadline = time.monotonic() + (
            120.0 if quick else SOAK_TIMEOUT)
        server_crashes_at = sorted(
            spec.index or 0 for spec in plan.specs
            if spec.site == "server.crash")
        worker_crashes_at = sorted(
            spec.index or 0 for spec in plan.specs
            if spec.site == "worker.crash")
        server_kills = 0
        worker_kills = 0
        while time.monotonic() < soak_deadline:
            try:
                snapshot = _get_direct(server_url, "/queue") or {}
            except ServiceUnavailable:
                snapshot = {}
            counts = snapshot.get("counts") or {}
            done = int(counts.get("done", 0))
            terminal = done + int(counts.get("failed", 0))
            if server_crashes_at and done >= server_crashes_at[0]:
                server_crashes_at.pop(0)
                server_kills += 1
                log(f"SIGKILL server (pid {server_proc.pid}, "
                    f"done={done})")
                fleet.kill(server_proc)
                time.sleep(0.3)
                # The restart gets NO fault plan: its journal replay
                # and fresh appends must run clean.
                server_proc = spawn_server(with_faults=False)
                _wait_healthy(server_url)
            if worker_crashes_at and done >= worker_crashes_at[0]:
                worker_crashes_at.pop(0)
                victim = next((p for p in worker_procs
                               if p.poll() is None), None)
                if victim is not None:
                    worker_kills += 1
                    log(f"SIGKILL worker (pid {victim.pid}, "
                        f"done={done})")
                    fleet.kill(victim)
                    worker_procs.append(spawn_worker(worker_seq))
                    worker_seq += 1
            if (terminal >= njobs and len(submitted) == njobs
                    and not server_crashes_at and not worker_crashes_at):
                break
            time.sleep(0.1)
        report.check("server crash injected", server_kills >= 1,
                     f"{server_kills} kill(s) + restart")
        report.check("worker crash injected", worker_kills >= 1,
                     f"{worker_kills} kill(s)")

        # --------------------------------------------------------------
        # Fetch through the proxy; verify byte identity.
        # --------------------------------------------------------------
        try:
            results = fetch_results(proxy.url, jobs, timeout=90.0,
                                    stream=None)
        except (ServiceUnavailable, RemoteJobFailed,
                TimeoutError) as error:
            report.check("all jobs completed", False, str(error))
            results = None
        if results is not None:
            report.check("all jobs completed", True,
                         f"{len(results)}/{njobs}")
            mismatched = [
                job.label for job, result in zip(jobs, results)
                if _canonical_bytes(result.to_dict())
                != reference[job.key]]
            report.check("results byte-identical to fault-free run",
                         not mismatched,
                         "all identical" if not mismatched
                         else ", ".join(mismatched[:4]))

        # --------------------------------------------------------------
        # Invariants on the durable state + counters.
        # --------------------------------------------------------------
        torn = []
        for root, _dirs, files in os.walk(cache_dir):
            for name in files:
                if name.startswith(".tmp-") or name.startswith(".hb-"):
                    torn.append(os.path.join(root, name))
                elif name.endswith(".json"):
                    try:
                        with open(os.path.join(root, name),
                                  encoding="utf-8") as handle:
                            json.load(handle)
                    except ValueError:
                        torn.append(os.path.join(root, name))
        report.check("no torn cache entries", not torn,
                     f"{len(torn)} torn file(s)" if torn else "")

        counters = proxy.counters()
        report.counters.update(
            {f"proxy.{name}": value
             for name, value in counters.items() if name != "faults"})
        for site, count in sorted(counters["faults"].items()):
            report.counters[f"fault.{site}"] = count
        report.check("network faults injected",
                     sum(counters["faults"].values()) >= 1,
                     f"{counters['faults']}")
        metrics = ""
        try:
            import urllib.request
            with urllib.request.urlopen(f"{proxy.url}/metrics",
                                        timeout=5.0) as response:
                metrics = response.read().decode("utf-8")
        except OSError:
            pass
        for family in ("repro_service_shed_total",
                       "repro_service_request_replays",
                       "repro_service_queue_write_errors",
                       "repro_service_chaos_requests"):
            for line in metrics.splitlines():
                if line.startswith(family + " "):
                    report.counters[family] = line.split()[-1]
        report.check("chaos counters exported",
                     "repro_service_chaos_requests" in report.counters,
                     "repro_service_chaos_* on /metrics")
    finally:
        report.elapsed = time.monotonic() - started
        if not keep_processes:
            leaked = fleet.reap_all()
            report.check("no leaked child processes", leaked == 0,
                         f"{leaked} leaked" if leaked else
                         f"{len(fleet.procs)} spawned, all reaped")
        proxy.stop()
    return report
