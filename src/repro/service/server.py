"""The simulation service's HTTP server: job API + shared cache tier.

:class:`ServiceServer` grows the read-only
:class:`~repro.obs.server.TelemetryServer` into a writable job API
(same stdlib ``ThreadingHTTPServer``, same exposition helpers, same
fail-soft handler discipline) fronting a :class:`JobQueue` and the
sharded :class:`~repro.runtime.cache.ResultCache`:

``POST /jobs``
    Body: a job's canonical form (``SimJob.canonical()``).  Validated
    strictly — schema version, catalog benchmark, spec/config field
    checks — and keyed by the same SHA-256 content hash clients
    compute, so submission is idempotent: a duplicate key returns the
    existing job.  A key already in the cache is answered ``done``
    *without queueing anything* — that is the warm-sweep fast path.
``GET /jobs/<key>``
    Status + (when done) the cached result document.
``GET /queue``
    Queue depth, per-state counts, oldest pending age, entry list.
``GET /cache/<key>``
    The raw cache entry — the HTTP cache backend remote
    :class:`ResultCache` instances consult on local misses.
``POST /claim`` / ``POST /complete`` / ``POST /fail`` / ``POST /heartbeat``
    The worker protocol (see :mod:`repro.service.worker` and
    ``docs/SERVICE.md``).  Heartbeats renew the job's lease and are
    written to the service data directory's heartbeat channel in
    :mod:`repro.obs.heartbeat` format, so ``/metrics`` and ``repro top``
    see remote workers exactly like local pool workers.
``GET /metrics``
    Everything the telemetry exporter serves, plus queue gauges and
    per-shard cache hit/miss/eviction counters.

All mutating endpoints are journaled through the queue before they are
acknowledged, so a SIGKILL'd server restarted on the same data
directory resumes pending work and re-queues whatever was running.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Optional

from repro.obs.heartbeat import heartbeat_dir
from repro.obs.metrics import Histogram
from repro.obs.server import PrometheusText, TelemetryServer, _json_bytes
from repro.obs.spans import (
    LATENCY_BUCKETS,
    SpanRecorder,
    TraceContext,
    read_spans,
)
from repro.runtime.cache import ResultCache
from repro.runtime.job import SimJob
from repro.service.queue import DEFAULT_LEASE_SECONDS, JobQueue

#: Bump on any change to the service's request/response shapes.
SERVICE_API_VERSION = 1

#: Cap on span records accepted per ``POST /spans`` request.
MAX_SPANS_PER_POST = 10_000


class ServiceServer(TelemetryServer):
    """Job-submission and shared-cache HTTP service.

    ``data_dir`` holds everything durable: ``queue.jsonl`` and the
    ``heartbeats/`` channel.  The cache root is whatever the
    :class:`ResultCache` resolves (``REPRO_CACHE_DIR`` or the explicit
    ``cache``); the server's own cache never consults a remote tier —
    it *is* the remote tier.
    """

    def __init__(
        self,
        data_dir: str,
        port: int = 0,
        host: str = "127.0.0.1",
        cache: Optional[ResultCache] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        registry=None,
        stale_after: Optional[float] = None,
    ) -> None:
        super().__init__(port=port, host=host, registry=registry,
                         telemetry_dir=data_dir, stale_after=stale_after)
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.queue = JobQueue(self.data_dir, lease_seconds=lease_seconds)
        self.cache = cache if cache is not None else ResultCache(remote=False)
        self.submits = 0
        self.submit_cache_hits = 0
        self.submit_duplicates = 0
        self.submit_rejected = 0
        # Distributed tracing: the service's spans.jsonl is the
        # authoritative trace store — workers and clients ship their
        # spans here (POST /spans), and the queue observer reconstructs
        # the queue-phase spans from journal-derived timestamps.
        self.spans = SpanRecorder(directory=self.data_dir)
        self._span_hist: dict = {}
        self.spans.observer = self._observe_span
        self.queue.observer = self._queue_span

    # ------------------------------------------------------------------
    # Distributed tracing.
    # ------------------------------------------------------------------
    def _observe_span(self, record: dict) -> None:
        """Feed one span into the per-stage latency histograms."""
        start = record.get("start")
        end = record.get("end")
        if not isinstance(start, (int, float)) \
                or not isinstance(end, (int, float)):
            return
        stage = record.get("stage") or "other"
        histogram = self._span_hist.get(stage)
        if histogram is None:
            histogram = self._span_hist[stage] = Histogram(
                buckets=LATENCY_BUCKETS)
        histogram.observe(max(0.0, end - start))

    def _queue_span(self, event: str, entry) -> None:
        """Reconstruct a queue-phase span for one entry transition.

        Called by the queue (fail-soft) right after the journal write;
        the timestamps come from the entry, which is itself rebuilt
        from the journal on restart — so a replayed queue produces the
        same spans a live one would.
        """
        context = TraceContext.from_header(entry.trace)
        if context is None or not context.sampled:
            return
        now = time.time()
        common = {"key": entry.key, "run_id": entry.run_id,
                  "worker": entry.worker}
        common = {k: v for k, v in common.items() if v is not None}
        if event == "claim":
            # Submission to lease grant: the pure queue-wait phase.
            self.spans.emit("queue.wait", context, entry.submitted, now,
                            stage="queue", claims=entry.claims, **common)
        elif event in ("complete", "fail"):
            start = entry.claimed if entry.claimed is not None \
                else entry.submitted
            self.spans.emit("queue.lease", context, start, now,
                            stage="queue",
                            status="ok" if event == "complete" else "error",
                            **common)
        elif event == "requeue":
            start = entry.claimed if entry.claimed is not None \
                else entry.submitted
            self.spans.emit("queue.requeue", context, start, now,
                            stage="queue", status="requeued",
                            requeues=entry.requeues, **common)

    # ------------------------------------------------------------------
    # GET routing.
    # ------------------------------------------------------------------
    def handle(self, request) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        rid = self._request_id(request)
        try:
            if path == "/queue":
                self.scrapes += 1
                self._respond(request, 200, _json_bytes(
                    self.queue.snapshot()), "application/json")
                return
            if path == "/spans":
                self.scrapes += 1
                self._spans_document(request)
                return
            if path.startswith("/jobs/"):
                self.scrapes += 1
                self._job_status(request, path[len("/jobs/"):])
                return
            if path.startswith("/cache/"):
                self.scrapes += 1
                self._cache_entry(request, path[len("/cache/"):])
                return
        except Exception as error:  # same fail-soft contract as the base
            try:
                self._respond(request, 500,
                              _json_bytes({"error": str(error),
                                           "request_id": rid}),
                              "application/json")
            except Exception:
                pass
            return
        super().handle(request)

    def _spans_document(self, request) -> None:
        """``GET /spans``: the service's span journal as JSON.

        ``?trace=<id>`` filters to one trace, ``?limit=N`` keeps the
        newest N records (the journal is append-ordered).
        """
        from urllib.parse import parse_qs, urlsplit

        query = parse_qs(urlsplit(request.path).query)
        records = read_spans(self.data_dir)
        trace = query.get("trace", [None])[0]
        if trace:
            records = [r for r in records if r.get("trace") == trace]
        limit = query.get("limit", [None])[0]
        if limit:
            try:
                records = records[-max(0, int(limit)):]
            except ValueError:
                pass
        document = {
            "count": len(records),
            "spans": records,
            "write_errors": self.spans.write_errors,
        }
        self._respond(request, 200, _json_bytes(document),
                      "application/json")

    def _job_status(self, request, key: str) -> None:
        entry = self.queue.get(key)
        cached = self.cache.load_key(key)
        if entry is None and cached is None:
            self._respond(request, 404,
                          _json_bytes({
                              "error": f"unknown job {key}",
                              "request_id": self._request_id(request),
                          }),
                          "application/json")
            return
        document = {"key": key, "api": SERVICE_API_VERSION}
        if entry is not None:
            document.update(entry.public())
        if cached is not None:
            document["state"] = "done"
            document["result"] = cached.get("result")
            document.setdefault("elapsed", cached.get("elapsed"))
            document["cached"] = True
        self._respond(request, 200, _json_bytes(document),
                      "application/json")

    def _cache_entry(self, request, key: str) -> None:
        payload = self.cache.load_key(key)
        if payload is None:
            self._respond(request, 404,
                          _json_bytes({
                              "error": f"cache miss for {key}",
                              "request_id": self._request_id(request),
                          }),
                          "application/json")
            return
        self._respond(request, 200, _json_bytes(payload),
                      "application/json")

    # ------------------------------------------------------------------
    # POST routing (the writable half the telemetry exporter lacks).
    # ------------------------------------------------------------------
    def handle_post(self, request) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        rid = self._request_id(request)
        try:
            body = self._read_json_body(request)
        except ValueError as error:
            self._respond(request, 400,
                          _json_bytes({"error": f"bad request body: {error}",
                                       "request_id": rid}),
                          "application/json")
            return
        if path == "/jobs":
            # Trace context rides both the payload ("trace") and the
            # W3C-style HTTP header; the header fills in when a client
            # only speaks traceparent.
            header = request.headers.get("traceparent")
            if header is not None and "trace" not in body:
                body["trace"] = header
        try:
            if path == "/jobs":
                status, document = self._post_job(body)
            elif path == "/claim":
                status, document = self._post_claim(body)
            elif path == "/complete":
                status, document = self._post_complete(body)
            elif path == "/fail":
                status, document = self._post_fail(body)
            elif path == "/heartbeat":
                status, document = self._post_heartbeat(body)
            elif path == "/spans":
                status, document = self._post_spans(body)
            else:
                status, document = 404, {
                    "error": f"unknown endpoint {path}",
                    "endpoints": ["/jobs", "/claim", "/complete",
                                  "/fail", "/heartbeat", "/spans"],
                }
        except Exception as error:
            status, document = 500, {"error": str(error)}
        if status >= 400 and isinstance(document, dict):
            document.setdefault("request_id", rid)
        try:
            self._respond(request, status, _json_bytes(document),
                          "application/json")
        except Exception:
            pass

    def _post_job(self, body: dict):
        """Validate, dedupe, and enqueue one submission.

        ``run_id`` and ``trace`` in the body are routing fields, not
        part of the job's canonical form: they are peeled off before
        validation; ``run_id`` correlates the entry with the submitting
        run, ``trace`` carries the submitter's traceparent so every
        downstream hop joins the same distributed trace.
        """
        self.submits += 1
        run_id = body.pop("run_id", None)
        if run_id is not None:
            run_id = str(run_id)
        trace = body.pop("trace", None)
        context = TraceContext.from_header(trace)
        # Only a well-formed, sampled context is worth propagating.
        trace = trace if context is not None and context.sampled else None
        try:
            job = SimJob.from_canonical(body)
            # Resolve the benchmark now so an unknown name is a clean
            # 400 at submission, not a failed job on some worker later.
            from repro.workloads.profiles import profile_for
            profile_for(job.benchmark)
        except (KeyError, ValueError, TypeError) as error:
            self.submit_rejected += 1
            return 400, {"error": f"invalid job: {error}"}
        key = job.key
        if self.cache.load_key(key) is not None:
            # Warm path: the cell is already computed; nothing queues,
            # no worker wakes, the submit is answered from disk.
            self.submit_cache_hits += 1
            return 200, {"key": key, "state": "done", "cached": True}
        entry, created = self.queue.submit(key, job.canonical(),
                                           run_id=run_id, trace=trace)
        if not created:
            self.submit_duplicates += 1
        return (202 if created else 200), {
            "key": key,
            "state": entry.state,
            "cached": False,
            "created": created,
        }

    def _post_claim(self, body: dict):
        worker = str(body.get("worker") or "anonymous")
        entry = self.queue.claim(worker)
        if entry is None:
            return 200, {"job": None,
                         "depth": self.queue.counts()["pending"]}
        document = {
            "job": entry.payload,
            "key": entry.key,
            "index": entry.index,
            "claims": entry.claims,
            "lease_seconds": self.queue.lease_seconds,
            "run_id": entry.run_id,
        }
        if entry.trace is not None:
            document["trace"] = entry.trace
        return 200, document

    def _post_spans(self, body: dict):
        """Ingest span records shipped by workers and clients."""
        records = body.get("spans")
        if not isinstance(records, list):
            return 400, {"error": "spans needs a 'spans' list"}
        accepted = self.spans.ingest(records[:MAX_SPANS_PER_POST])
        return 200, {"accepted": accepted,
                     "dropped": len(records) - accepted}

    def _post_complete(self, body: dict):
        key = body.get("key")
        result = body.get("result")
        if not isinstance(key, str) or not isinstance(result, dict):
            return 400, {"error": "complete needs 'key' and 'result'"}
        entry = self.queue.get(key)
        if entry is None:
            return 404, {"error": f"unknown job {key}"}
        try:
            job = SimJob.from_canonical(entry.payload)
            from repro.core.simulator import SimResult
            sim_result = SimResult.from_dict(result)
        except (KeyError, ValueError, TypeError) as error:
            return 400, {"error": f"invalid result payload: {error}"}
        elapsed = body.get("elapsed")
        # Cache first, then journal: if we die between the two the
        # restarted server finds the key cached and answers done anyway.
        self.cache.store(job, sim_result, elapsed=elapsed)
        accepted = self.queue.complete(
            key, worker=body.get("worker"), elapsed=elapsed)
        return 200, {"key": key, "accepted": accepted, "state": "done"}

    def _post_fail(self, body: dict):
        key = body.get("key")
        if not isinstance(key, str):
            return 400, {"error": "fail needs 'key'"}
        if self.queue.get(key) is None:
            return 404, {"error": f"unknown job {key}"}
        accepted = self.queue.fail(
            key, reason=str(body.get("reason") or "worker reported failure"),
            worker=body.get("worker"))
        return 200, {"key": key, "accepted": accepted}

    def _post_heartbeat(self, body: dict):
        """Record a worker heartbeat and renew its job lease.

        The body is an :mod:`repro.obs.heartbeat` record plus ``key`` /
        ``worker`` routing fields.  It is rewritten server-side with the
        server's clock so staleness math never trusts a remote clock,
        then stored as ``heartbeats/hb-<index>.json`` — the exact
        channel HeartbeatMonitor, ``/metrics``, and ``repro top`` read.
        """
        key = body.get("key")
        renewed = False
        if isinstance(key, str):
            renewed = self.queue.renew(key, worker=body.get("worker"))
        record = {field: body.get(field) for field in
                  ("schema", "pid", "index", "key", "label", "attempt",
                   "beats", "cycles", "retired", "ipc", "elapsed",
                   "profile", "done", "worker", "run_id")
                  if body.get(field) is not None}
        record["ts"] = time.time()
        index = record.get("index", 0)
        directory = heartbeat_dir(self.data_dir)
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"hb-{index}.json")
            fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".hb-",
                                            suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            pass  # a sick disk degrades observability, not scheduling
        return 200, {"renewed": renewed}

    # ------------------------------------------------------------------
    # /metrics: telemetry families + queue + sharded cache.
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        document = super().healthz()
        document["endpoints"] = [
            "/metrics", "/jobs", "/jobs/<key>", "/queue", "/cache/<key>",
            "/spans", "/runs", "/healthz",
        ]
        document["role"] = "service"
        return document

    def metrics_text(self) -> str:
        text = PrometheusText()
        text.sample("exporter.uptime_seconds", "gauge",
                    time.time() - self.started)
        text.sample("exporter.scrapes", "counter", self.scrapes)
        self._queue_metrics(text)
        self._cache_metrics(text)
        self._span_metrics(text)
        self._heartbeat_metrics(text)
        if self.registry is not None:
            from repro.obs.server import registry_to_prometheus
            registry_to_prometheus(self.registry, text)
        return text.render()

    def _queue_metrics(self, text: PrometheusText) -> None:
        snapshot = self.queue.snapshot()
        text.sample("service.queue_depth", "gauge", snapshot["depth"])
        text.sample("service.queue_oldest_pending_seconds", "gauge",
                    snapshot["oldest_pending_seconds"])
        for state, count in sorted(snapshot["counts"].items()):
            text.sample("service.jobs", "gauge", count, state=state)
        text.sample("service.queue_write_errors", "counter",
                    self.queue.write_errors)
        text.sample("service.submits", "counter", self.submits)
        text.sample("service.submit_cache_hits", "counter",
                    self.submit_cache_hits)
        text.sample("service.submit_duplicates", "counter",
                    self.submit_duplicates)
        text.sample("service.submit_rejected", "counter",
                    self.submit_rejected)
        requeues = sum(entry.get("requeues", 0)
                       for entry in snapshot["entries"])
        text.sample("service.requeues", "counter", requeues)
        # Queue-wait (submit -> claim) from journal-derived timestamps:
        # the latency gap between the submit counters and the worker
        # heartbeats.
        waits = []
        for entry in snapshot["entries"]:
            times = entry.get("times") or {}
            if "claimed" in times and "submitted" in times:
                waits.append(max(0.0, times["claimed"]
                                 - times["submitted"]))
        if waits:
            summary = Histogram.of(waits, buckets=LATENCY_BUCKETS).summary()
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                                   ("0.99", "p99")):
                text.sample("service.queue_wait_seconds", "summary",
                            summary[q_key], quantile=q_label)
            text.sample("service.queue_wait_seconds_sum", "gauge",
                        summary["sum"])
            text.sample("service.queue_wait_seconds_count", "gauge",
                        summary["count"])

    def _span_metrics(self, text: PrometheusText) -> None:
        """``repro_service_span_seconds{stage=}``: per-stage latency
        summaries over every span this server recorded or ingested."""
        text.sample("service.spans", "counter", self.spans.recorded)
        text.sample("service.span_write_errors", "counter",
                    self.spans.write_errors)
        for stage in sorted(self._span_hist):
            summary = self._span_hist[stage].summary()
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                                   ("0.99", "p99")):
                text.sample("service.span_seconds", "summary",
                            summary[q_key], quantile=q_label,
                            stage=stage)
            text.sample("service.span_seconds_sum", "gauge",
                        summary["sum"], stage=stage)
            text.sample("service.span_seconds_count", "gauge",
                        summary["count"], stage=stage)

    def _cache_metrics(self, text: PrometheusText) -> None:
        stats = self.cache.stats
        for field in ("hits", "misses", "stores", "corrupt", "evicted",
                      "migrated", "remote_hits"):
            text.sample(f"cache.{field}", "counter", getattr(stats, field))
        text.sample("cache.hit_rate", "gauge", stats.hit_rate)
        text.sample("cache.shards", "gauge", self.cache.shards)
        for index in sorted(self.cache.shard_stats):
            shard = self.cache.shard_stats[index]
            labels = {"shard": f"{index:03d}"}
            for field in ("hits", "misses", "stores", "evicted"):
                text.sample(f"cache.shard_{field}", "counter",
                            getattr(shard, field), **labels)
