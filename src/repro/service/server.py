"""The simulation service's HTTP server: job API + shared cache tier.

:class:`ServiceServer` grows the read-only
:class:`~repro.obs.server.TelemetryServer` into a writable job API
(same stdlib ``ThreadingHTTPServer``, same exposition helpers, same
fail-soft handler discipline) fronting a :class:`JobQueue` and the
sharded :class:`~repro.runtime.cache.ResultCache`:

``POST /jobs``
    Body: a job's canonical form (``SimJob.canonical()``).  Validated
    strictly — schema version, catalog benchmark, spec/config field
    checks — and keyed by the same SHA-256 content hash clients
    compute, so submission is idempotent: a duplicate key returns the
    existing job.  A key already in the cache is answered ``done``
    *without queueing anything* — that is the warm-sweep fast path.
``GET /jobs/<key>``
    Status + (when done) the cached result document.
``GET /queue``
    Queue depth, per-state counts, oldest pending age, entry list.
``GET /cache/<key>``
    The raw cache entry — the HTTP cache backend remote
    :class:`ResultCache` instances consult on local misses.
``POST /claim`` / ``POST /complete`` / ``POST /fail`` / ``POST /heartbeat``
    The worker protocol (see :mod:`repro.service.worker` and
    ``docs/SERVICE.md``).  Heartbeats renew the job's lease and are
    written to the service data directory's heartbeat channel in
    :mod:`repro.obs.heartbeat` format, so ``/metrics`` and ``repro top``
    see remote workers exactly like local pool workers.
``GET /metrics``
    Everything the telemetry exporter serves, plus queue gauges and
    per-shard cache hit/miss/eviction counters.

All mutating endpoints are journaled through the queue before they are
acknowledged, so a SIGKILL'd server restarted on the same data
directory resumes pending work and re-queues whatever was running.

Overload and failure degrade, never corrupt (``docs/RESILIENCE.md``):

* **Idempotent replay** — mutating POSTs carrying a client-supplied
  ``X-Repro-Request-Id`` are answered from a bounded replay cache on
  retry, so a response lost in flight (``http.drop_response``) is
  re-acknowledged without re-applying the mutation.
* **Load shedding** — with ``max_depth`` set, submissions beyond the
  queue's depth bound are answered ``429`` + ``Retry-After`` instead of
  growing without limit (``repro_service_shed_total`` counts them).
* **Graceful drain** — :meth:`drain` (wired to SIGTERM by ``repro
  service``) stops granting claims and sheds new submissions while
  in-flight completions keep landing; ``/healthz`` announces it.
* **Read-only degradation** — a failed journal append (real ``ENOSPC``
  or injected ``disk.full``) flips the queue read-only: submissions
  shed with 503 until an append succeeds again (see
  :mod:`repro.service.queue`).
* **Deadline propagation** — a POST whose ``X-Repro-Deadline`` (unix
  seconds) already passed is answered ``408`` without side effects; a
  claim leased to a client that gave up would only burn a lease.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from typing import Optional

from repro.obs.heartbeat import heartbeat_dir
from repro.obs.metrics import Histogram
from repro.obs.server import PrometheusText, TelemetryServer, _json_bytes
from repro.obs.spans import (
    LATENCY_BUCKETS,
    SpanRecorder,
    TraceContext,
    read_spans,
)
from repro.runtime.cache import ResultCache
from repro.runtime.job import SimJob
from repro.service.queue import (
    DEFAULT_LEASE_SECONDS,
    JobQueue,
    QueueReadOnly,
)

#: Bump on any change to the service's request/response shapes.
SERVICE_API_VERSION = 1

#: Cap on span records accepted per ``POST /spans`` request.
MAX_SPANS_PER_POST = 10_000

#: Mutating endpoints whose responses enter the idempotent-replay cache.
REPLAYABLE_PATHS = ("/jobs", "/claim", "/complete", "/fail")

#: Bound on remembered (request-id → response) pairs.
REPLAY_CACHE_LIMIT = 4096

#: ``Retry-After`` seconds suggested on 429/503 shed responses.
SHED_RETRY_AFTER = 0.5


class ServiceServer(TelemetryServer):
    """Job-submission and shared-cache HTTP service.

    ``data_dir`` holds everything durable: ``queue.jsonl`` and the
    ``heartbeats/`` channel.  The cache root is whatever the
    :class:`ResultCache` resolves (``REPRO_CACHE_DIR`` or the explicit
    ``cache``); the server's own cache never consults a remote tier —
    it *is* the remote tier.
    """

    def __init__(
        self,
        data_dir: str,
        port: int = 0,
        host: str = "127.0.0.1",
        cache: Optional[ResultCache] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        registry=None,
        stale_after: Optional[float] = None,
        max_depth: Optional[int] = None,
        faults=None,
    ) -> None:
        super().__init__(port=port, host=host, registry=registry,
                         telemetry_dir=data_dir, stale_after=stale_after)
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.queue = JobQueue(self.data_dir, lease_seconds=lease_seconds,
                              faults=faults)
        self.cache = cache if cache is not None else ResultCache(remote=False)
        if faults is not None and self.cache.faults is None:
            # Arm the cache's hook too: `disk.full` specs scoped
            # ``path="cache"`` fail result stores, not journal appends.
            self.cache.faults = faults
        #: Queue-depth bound (pending+running) beyond which submissions
        #: are shed with 429; ``None`` disables shedding entirely.
        self.max_depth = max_depth
        #: True once :meth:`drain` ran: no new claims, no new jobs.
        self.draining = False
        self.submits = 0
        self.submit_cache_hits = 0
        self.submit_duplicates = 0
        self.submit_rejected = 0
        self.shed_total = 0
        self.request_replays = 0
        self.deadline_rejected = 0
        self._replay_cache: "OrderedDict[str, tuple]" = OrderedDict()
        # Distributed tracing: the service's spans.jsonl is the
        # authoritative trace store — workers and clients ship their
        # spans here (POST /spans), and the queue observer reconstructs
        # the queue-phase spans from journal-derived timestamps.
        self.spans = SpanRecorder(directory=self.data_dir)
        self._span_hist: dict = {}
        self.spans.observer = self._observe_span
        self.queue.observer = self._queue_span

    # ------------------------------------------------------------------
    # Distributed tracing.
    # ------------------------------------------------------------------
    def _observe_span(self, record: dict) -> None:
        """Feed one span into the per-stage latency histograms."""
        start = record.get("start")
        end = record.get("end")
        if not isinstance(start, (int, float)) \
                or not isinstance(end, (int, float)):
            return
        stage = record.get("stage") or "other"
        histogram = self._span_hist.get(stage)
        if histogram is None:
            histogram = self._span_hist[stage] = Histogram(
                buckets=LATENCY_BUCKETS)
        histogram.observe(max(0.0, end - start))

    def _queue_span(self, event: str, entry) -> None:
        """Reconstruct a queue-phase span for one entry transition.

        Called by the queue (fail-soft) right after the journal write;
        the timestamps come from the entry, which is itself rebuilt
        from the journal on restart — so a replayed queue produces the
        same spans a live one would.
        """
        context = TraceContext.from_header(entry.trace)
        if context is None or not context.sampled:
            return
        now = time.time()
        common = {"key": entry.key, "run_id": entry.run_id,
                  "worker": entry.worker}
        common = {k: v for k, v in common.items() if v is not None}
        if event == "claim":
            # Submission to lease grant: the pure queue-wait phase.
            self.spans.emit("queue.wait", context, entry.submitted, now,
                            stage="queue", claims=entry.claims, **common)
        elif event in ("complete", "fail"):
            start = entry.claimed if entry.claimed is not None \
                else entry.submitted
            self.spans.emit("queue.lease", context, start, now,
                            stage="queue",
                            status="ok" if event == "complete" else "error",
                            **common)
        elif event == "requeue":
            start = entry.claimed if entry.claimed is not None \
                else entry.submitted
            self.spans.emit("queue.requeue", context, start, now,
                            stage="queue", status="requeued",
                            requeues=entry.requeues, **common)

    # ------------------------------------------------------------------
    # GET routing.
    # ------------------------------------------------------------------
    def handle(self, request) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        rid = self._request_id(request)
        try:
            if path == "/queue":
                self.scrapes += 1
                self._respond(request, 200, _json_bytes(
                    self.queue.snapshot()), "application/json")
                return
            if path == "/spans":
                self.scrapes += 1
                self._spans_document(request)
                return
            if path.startswith("/jobs/"):
                self.scrapes += 1
                self._job_status(request, path[len("/jobs/"):])
                return
            if path.startswith("/cache/"):
                self.scrapes += 1
                self._cache_entry(request, path[len("/cache/"):])
                return
        except Exception as error:  # same fail-soft contract as the base
            try:
                self._respond(request, 500,
                              _json_bytes({"error": str(error),
                                           "request_id": rid}),
                              "application/json")
            except Exception:
                pass
            return
        super().handle(request)

    def _spans_document(self, request) -> None:
        """``GET /spans``: the service's span journal as JSON.

        ``?trace=<id>`` filters to one trace, ``?limit=N`` keeps the
        newest N records (the journal is append-ordered).
        """
        from urllib.parse import parse_qs, urlsplit

        query = parse_qs(urlsplit(request.path).query)
        records = read_spans(self.data_dir)
        trace = query.get("trace", [None])[0]
        if trace:
            records = [r for r in records if r.get("trace") == trace]
        limit = query.get("limit", [None])[0]
        if limit:
            try:
                records = records[-max(0, int(limit)):]
            except ValueError:
                pass
        document = {
            "count": len(records),
            "spans": records,
            "write_errors": self.spans.write_errors,
        }
        self._respond(request, 200, _json_bytes(document),
                      "application/json")

    def _job_status(self, request, key: str) -> None:
        entry = self.queue.get(key)
        cached = self.cache.load_key(key)
        if entry is None and cached is None:
            self._respond(request, 404,
                          _json_bytes({
                              "error": f"unknown job {key}",
                              "request_id": self._request_id(request),
                          }),
                          "application/json")
            return
        document = {"key": key, "api": SERVICE_API_VERSION}
        if entry is not None:
            document.update(entry.public())
        if cached is not None:
            document["state"] = "done"
            document["result"] = cached.get("result")
            document.setdefault("elapsed", cached.get("elapsed"))
            document["cached"] = True
        self._respond(request, 200, _json_bytes(document),
                      "application/json")

    def _cache_entry(self, request, key: str) -> None:
        payload = self.cache.load_key(key)
        if payload is None:
            self._respond(request, 404,
                          _json_bytes({
                              "error": f"cache miss for {key}",
                              "request_id": self._request_id(request),
                          }),
                          "application/json")
            return
        self._respond(request, 200, _json_bytes(payload),
                      "application/json")

    # ------------------------------------------------------------------
    # POST routing (the writable half the telemetry exporter lacks).
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Enter drain mode (SIGTERM path): grant no new claims, shed
        new submissions, keep accepting completions and heartbeats so
        in-flight work lands and the journal finishes cleanly.
        ``/healthz`` announces the state for orchestrators."""
        self.draining = True

    def _replayed_response(self, request, path: str,
                           rid: str) -> bool:
        """Answer a retried mutation from the replay cache (True if so).

        The cache is keyed on the *client-supplied* request id — the
        transport reuses one id across every retry of a logical
        operation, so a response lost to ``http.drop_response`` is
        re-acknowledged here without the mutation running twice.
        """
        if path not in REPLAYABLE_PATHS:
            return False
        if not request.headers.get("X-Repro-Request-Id"):
            return False  # no client id: nothing to key replay on
        cached = self._replay_cache.get(rid)
        if cached is None:
            return False
        self.request_replays += 1
        status, document = cached
        document = dict(document)
        document["replayed"] = True
        self._respond(request, status, _json_bytes(document),
                      "application/json")
        return True

    def _remember_response(self, request, path: str, rid: str,
                           status: int, document) -> None:
        """Record a replayable response; transient statuses excluded.

        Shed/drain/deadline answers (408/429/5xx) must never replay —
        a retry that arrives after the pressure passed deserves a
        fresh verdict.  Applied mutations (2xx) and deterministic
        validation verdicts (400/404) replay byte-for-byte.
        """
        if path not in REPLAYABLE_PATHS or not isinstance(document, dict):
            return
        if not request.headers.get("X-Repro-Request-Id"):
            return
        if status >= 400 and status not in (400, 404):
            return
        self._replay_cache[rid] = (status, dict(document))
        while len(self._replay_cache) > REPLAY_CACHE_LIMIT:
            self._replay_cache.popitem(last=False)

    @staticmethod
    def _deadline_expired(request) -> bool:
        """True when the client's ``X-Repro-Deadline`` already passed.

        The header carries absolute unix seconds (same-host clocks in
        the chaos harness; cross-host deployments accept the skew) so a
        request delayed past its sender's patience — e.g. held by an
        ``http.delay`` fault — is refused before it can burn a lease.
        """
        raw = request.headers.get("X-Repro-Deadline")
        if raw is None:
            return False
        try:
            return time.time() > float(raw)
        except (TypeError, ValueError):
            return False

    def handle_post(self, request) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        rid = self._request_id(request)
        try:
            body = self._read_json_body(request)
        except ValueError as error:
            self._respond(request, 400,
                          _json_bytes({"error": f"bad request body: {error}",
                                       "request_id": rid}),
                          "application/json")
            return
        try:
            if self._replayed_response(request, path, rid):
                return
        except Exception:
            pass  # replay is an optimisation, never a failure mode
        if self._deadline_expired(request):
            self.deadline_rejected += 1
            self._respond(request, 408,
                          _json_bytes({"error": "client deadline exceeded "
                                                "before processing",
                                       "request_id": rid}),
                          "application/json")
            return
        if path == "/jobs":
            # Trace context rides both the payload ("trace") and the
            # W3C-style HTTP header; the header fills in when a client
            # only speaks traceparent.
            header = request.headers.get("traceparent")
            if header is not None and "trace" not in body:
                body["trace"] = header
        headers_out = None
        try:
            if path == "/jobs":
                outcome = self._post_job(body)
            elif path == "/claim":
                outcome = self._post_claim(body)
            elif path == "/complete":
                outcome = self._post_complete(body)
            elif path == "/fail":
                outcome = self._post_fail(body)
            elif path == "/heartbeat":
                outcome = self._post_heartbeat(body)
            elif path == "/spans":
                outcome = self._post_spans(body)
            else:
                outcome = 404, {
                    "error": f"unknown endpoint {path}",
                    "endpoints": ["/jobs", "/claim", "/complete",
                                  "/fail", "/heartbeat", "/spans"],
                }
        except Exception as error:
            outcome = 500, {"error": str(error)}
        if len(outcome) == 3:
            status, document, headers_out = outcome
        else:
            status, document = outcome
        if status >= 400 and isinstance(document, dict):
            document.setdefault("request_id", rid)
        self._remember_response(request, path, rid, status, document)
        try:
            self._respond(request, status, _json_bytes(document),
                          "application/json", headers=headers_out)
        except Exception:
            pass

    def _post_job(self, body: dict):
        """Validate, dedupe, and enqueue one submission.

        ``run_id`` and ``trace`` in the body are routing fields, not
        part of the job's canonical form: they are peeled off before
        validation; ``run_id`` correlates the entry with the submitting
        run, ``trace`` carries the submitter's traceparent so every
        downstream hop joins the same distributed trace.
        """
        self.submits += 1
        run_id = body.pop("run_id", None)
        if run_id is not None:
            run_id = str(run_id)
        trace = body.pop("trace", None)
        context = TraceContext.from_header(trace)
        # Only a well-formed, sampled context is worth propagating.
        trace = trace if context is not None and context.sampled else None
        try:
            job = SimJob.from_canonical(body)
            # Resolve the benchmark now so an unknown name is a clean
            # 400 at submission, not a failed job on some worker later.
            from repro.workloads.profiles import profile_for
            profile_for(job.benchmark)
        except (KeyError, ValueError, TypeError) as error:
            self.submit_rejected += 1
            return 400, {"error": f"invalid job: {error}"}
        key = job.key
        if self.cache.load_key(key) is not None:
            # Warm path: the cell is already computed; nothing queues,
            # no worker wakes, the submit is answered from disk.
            self.submit_cache_hits += 1
            return 200, {"key": key, "state": "done", "cached": True}
        retry_after = {"Retry-After": SHED_RETRY_AFTER}
        if self.queue.get(key) is None:
            # Only *new* entries add depth; duplicates and cache hits
            # are answered even while draining or full.
            if self.draining:
                self.shed_total += 1
                return 503, {"error": "server is draining",
                             "draining": True}, retry_after
            if self.max_depth is not None:
                counts = self.queue.counts()
                depth = counts["pending"] + counts["running"]
                if depth >= self.max_depth:
                    self.shed_total += 1
                    return 429, {"error": f"queue full (depth {depth} >= "
                                          f"max {self.max_depth})",
                                 "depth": depth}, retry_after
        try:
            entry, created = self.queue.submit(key, job.canonical(),
                                               run_id=run_id, trace=trace)
        except QueueReadOnly as error:
            self.shed_total += 1
            return 503, {"error": str(error), "read_only": True}, retry_after
        if not created:
            self.submit_duplicates += 1
        return (202 if created else 200), {
            "key": key,
            "state": entry.state,
            "cached": False,
            "created": created,
        }

    def _post_claim(self, body: dict):
        worker = str(body.get("worker") or "anonymous")
        if self.draining:
            # Drain mode: existing leases run to completion, but no new
            # work leaves the queue.  Workers see an idle queue and
            # wind down on their own ``max_idle``.
            return 200, {"job": None, "draining": True,
                         "depth": self.queue.counts()["pending"]}
        entry = self.queue.claim(worker)
        if entry is None:
            return 200, {"job": None,
                         "depth": self.queue.counts()["pending"]}
        document = {
            "job": entry.payload,
            "key": entry.key,
            "index": entry.index,
            "claims": entry.claims,
            "lease_seconds": self.queue.lease_seconds,
            "run_id": entry.run_id,
        }
        if entry.trace is not None:
            document["trace"] = entry.trace
        return 200, document

    def _post_spans(self, body: dict):
        """Ingest span records shipped by workers and clients."""
        records = body.get("spans")
        if not isinstance(records, list):
            return 400, {"error": "spans needs a 'spans' list"}
        accepted = self.spans.ingest(records[:MAX_SPANS_PER_POST])
        return 200, {"accepted": accepted,
                     "dropped": len(records) - accepted}

    def _post_complete(self, body: dict):
        key = body.get("key")
        result = body.get("result")
        if not isinstance(key, str) or not isinstance(result, dict):
            return 400, {"error": "complete needs 'key' and 'result'"}
        entry = self.queue.get(key)
        if entry is None:
            return 404, {"error": f"unknown job {key}"}
        try:
            job = SimJob.from_canonical(entry.payload)
            from repro.core.simulator import SimResult
            sim_result = SimResult.from_dict(result)
        except (KeyError, ValueError, TypeError) as error:
            return 400, {"error": f"invalid result payload: {error}"}
        elapsed = body.get("elapsed")
        # Cache first, then journal: if we die between the two the
        # restarted server finds the key cached and answers done anyway.
        try:
            self.cache.store(job, sim_result, elapsed=elapsed)
        except OSError as error:
            # Full disk (real or injected): without the cached result
            # the completion has no durable half, so refuse it — the
            # worker retries, and past its budget the lease expires and
            # the job re-queues.  State stays consistent either way.
            return 503, {"error": f"cache store failed: {error}"}, \
                {"Retry-After": SHED_RETRY_AFTER}
        accepted = self.queue.complete(
            key, worker=body.get("worker"), elapsed=elapsed)
        return 200, {"key": key, "accepted": accepted, "state": "done"}

    def _post_fail(self, body: dict):
        key = body.get("key")
        if not isinstance(key, str):
            return 400, {"error": "fail needs 'key'"}
        if self.queue.get(key) is None:
            return 404, {"error": f"unknown job {key}"}
        accepted = self.queue.fail(
            key, reason=str(body.get("reason") or "worker reported failure"),
            worker=body.get("worker"))
        return 200, {"key": key, "accepted": accepted}

    def _post_heartbeat(self, body: dict):
        """Record a worker heartbeat and renew its job lease.

        The body is an :mod:`repro.obs.heartbeat` record plus ``key`` /
        ``worker`` routing fields.  It is rewritten server-side with the
        server's clock so staleness math never trusts a remote clock,
        then stored as ``heartbeats/hb-<index>.json`` — the exact
        channel HeartbeatMonitor, ``/metrics``, and ``repro top`` read.
        """
        key = body.get("key")
        renewed = False
        if isinstance(key, str):
            renewed = self.queue.renew(key, worker=body.get("worker"))
        record = {field: body.get(field) for field in
                  ("schema", "pid", "index", "key", "label", "attempt",
                   "beats", "cycles", "retired", "ipc", "elapsed",
                   "profile", "interval", "done", "worker", "run_id")
                  if body.get(field) is not None}
        record["ts"] = time.time()
        index = record.get("index", 0)
        directory = heartbeat_dir(self.data_dir)
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"hb-{index}.json")
            fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".hb-",
                                            suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            pass  # a sick disk degrades observability, not scheduling
        return 200, {"renewed": renewed}

    # ------------------------------------------------------------------
    # /metrics: telemetry families + queue + sharded cache.
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        document = super().healthz()
        document["endpoints"] = [
            "/metrics", "/jobs", "/jobs/<key>", "/queue", "/cache/<key>",
            "/spans", "/runs", "/healthz",
        ]
        document["role"] = "service"
        document["draining"] = self.draining
        document["read_only"] = self.queue.read_only
        if self.max_depth is not None:
            document["max_depth"] = self.max_depth
        return document

    def metrics_text(self) -> str:
        text = PrometheusText()
        text.sample("exporter.uptime_seconds", "gauge",
                    time.time() - self.started)
        text.sample("exporter.scrapes", "counter", self.scrapes)
        self._queue_metrics(text)
        self._cache_metrics(text)
        self._span_metrics(text)
        self._heartbeat_metrics(text)
        if self.registry is not None:
            from repro.obs.server import registry_to_prometheus
            registry_to_prometheus(self.registry, text)
        return text.render()

    def _queue_metrics(self, text: PrometheusText) -> None:
        snapshot = self.queue.snapshot()
        text.sample("service.queue_depth", "gauge", snapshot["depth"])
        text.sample("service.queue_oldest_pending_seconds", "gauge",
                    snapshot["oldest_pending_seconds"])
        for state, count in sorted(snapshot["counts"].items()):
            text.sample("service.jobs", "gauge", count, state=state)
        text.sample("service.queue_write_errors", "counter",
                    self.queue.write_errors)
        text.sample("service.submits", "counter", self.submits)
        text.sample("service.submit_cache_hits", "counter",
                    self.submit_cache_hits)
        text.sample("service.submit_duplicates", "counter",
                    self.submit_duplicates)
        text.sample("service.submit_rejected", "counter",
                    self.submit_rejected)
        text.sample("service.shed_total", "counter", self.shed_total)
        text.sample("service.request_replays", "counter",
                    self.request_replays)
        text.sample("service.deadline_rejected", "counter",
                    self.deadline_rejected)
        text.sample("service.draining", "gauge", self.draining)
        text.sample("service.read_only", "gauge", self.queue.read_only)
        requeues = sum(entry.get("requeues", 0)
                       for entry in snapshot["entries"])
        text.sample("service.requeues", "counter", requeues)
        # Queue-wait (submit -> claim) from journal-derived timestamps:
        # the latency gap between the submit counters and the worker
        # heartbeats.
        waits = []
        for entry in snapshot["entries"]:
            times = entry.get("times") or {}
            if "claimed" in times and "submitted" in times:
                waits.append(max(0.0, times["claimed"]
                                 - times["submitted"]))
        if waits:
            summary = Histogram.of(waits, buckets=LATENCY_BUCKETS).summary()
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                                   ("0.99", "p99")):
                text.sample("service.queue_wait_seconds", "summary",
                            summary[q_key], quantile=q_label)
            text.sample("service.queue_wait_seconds_sum", "gauge",
                        summary["sum"])
            text.sample("service.queue_wait_seconds_count", "gauge",
                        summary["count"])

    def _span_metrics(self, text: PrometheusText) -> None:
        """``repro_service_span_seconds{stage=}``: per-stage latency
        summaries over every span this server recorded or ingested."""
        text.sample("service.spans", "counter", self.spans.recorded)
        text.sample("service.span_write_errors", "counter",
                    self.spans.write_errors)
        for stage in sorted(self._span_hist):
            summary = self._span_hist[stage].summary()
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                                   ("0.99", "p99")):
                text.sample("service.span_seconds", "summary",
                            summary[q_key], quantile=q_label,
                            stage=stage)
            text.sample("service.span_seconds_sum", "gauge",
                        summary["sum"], stage=stage)
            text.sample("service.span_seconds_count", "gauge",
                        summary["count"], stage=stage)

    def _cache_metrics(self, text: PrometheusText) -> None:
        stats = self.cache.stats
        for field in ("hits", "misses", "stores", "corrupt", "evicted",
                      "migrated", "remote_hits"):
            text.sample(f"cache.{field}", "counter", getattr(stats, field))
        text.sample("cache.hit_rate", "gauge", stats.hit_rate)
        text.sample("cache.shards", "gauge", self.cache.shards)
        for index in sorted(self.cache.shard_stats):
            shard = self.cache.shard_stats[index]
            labels = {"shard": f"{index:03d}"}
            for field in ("hits", "misses", "stores", "evicted"):
                text.sample(f"cache.shard_{field}", "counter",
                            getattr(shard, field), **labels)
