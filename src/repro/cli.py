"""Command-line interface.

``python -m repro`` exposes the library without writing scripts::

    python -m repro list
    python -m repro simulate gzip --strategy fdrt
    python -m repro compare twolf --csv --jobs 4
    python -m repro experiment table1 --jobs auto
    python -m repro utilization vpr --strategy fdrt
    python -m repro sweep --jobs 4          # full benchmark x strategy matrix

All subcommands accept ``--instructions`` / ``--warmup`` to trade accuracy
for speed, and ``--machine`` to pick a Figure 8 machine variant.

Runtime flags (see ``docs/RUNTIME.md``): ``--jobs N`` runs simulations on
``N`` worker processes (``auto`` = one per CPU; also ``REPRO_JOBS``), and
``--no-cache`` disables the on-disk result cache (also ``REPRO_NO_CACHE``;
relocate it with ``REPRO_CACHE_DIR``).  ``compare``, ``experiment``, and
``sweep`` all honor both; ``sweep`` with no parameter (or ``matrix``) runs
the full benchmark × strategy grid with live progress and a cache-stats
summary, while ``sweep tc`` / ``sweep hops`` keep the original
sensitivity sweeps.

Observability (see ``docs/OBSERVABILITY.md``): ``repro trace`` writes a
Chrome trace-event JSON of one simulation (open it in
https://ui.perfetto.dev), ``--telemetry-dir DIR`` (also
``REPRO_TELEMETRY_DIR``) makes every engine run write structured JSONL
event logs plus a ``manifest.json`` run manifest, and
``sweep --report-json PATH`` dumps the engine report and cache counters
as machine-readable JSON (``-`` = stdout).

Live observability: ``--serve PORT`` (also ``REPRO_SERVE_PORT``; ``0``
= ephemeral) starts an in-run HTTP exporter with Prometheus
``/metrics`` plus ``/jobs``, ``/runs``, and ``/healthz`` JSON;
``repro top DIR|URL`` tails a running sweep's heartbeats and journal
as a live per-job table; and ``repro profile BENCH`` reports the
per-phase (fetch/assign/execute/fill) wall-clock split of one
simulation, with ``--out`` exporting a speedscope JSON profile.

Resilience (see ``docs/RESILIENCE.md``): ``sweep --resume DIR`` resumes
an interrupted sweep from its telemetry journal (SIGINT/SIGTERM write a
``status: interrupted`` manifest first and exit 130), ``sweep
--keep-going`` quarantines cells that exhaust their retries instead of
aborting (exit 3 flags the partial result), and ``sweep --fault-plan
PATH`` injects a deterministic chaos plan for testing the engine's
degradation paths.

Simulation as a service (see ``docs/SERVICE.md``): ``repro service
DATA-DIR`` runs the HTTP job API + shared sharded result cache,
``repro worker URL`` runs a pull-based execution agent against it,
``repro submit`` / ``repro fetch`` route a benchmark × strategy matrix
through the service (``$REPRO_SERVICE_URL`` supplies the default URL),
and ``repro cache stats`` / ``repro cache gc`` inspect and maintain the
sharded on-disk result cache (entry counts, per-shard distribution,
hit rate since last reset; TTL/LRU eviction).

Regression tracking (see ``docs/OBSERVABILITY.md``): ``repro analyze
DIR`` renders top-down IPC-loss attribution and assignment-quality
reports from a telemetry directory, ``repro baseline capture`` snapshots
golden metrics (with multi-seed noise bands) into ``baselines/*.json``,
and ``repro diff A B`` / ``repro diff RUN --against BASELINE`` flags
out-of-noise-band deltas, exiting non-zero on regressions.  Both
``analyze`` and ``diff`` take ``--json`` for machine-readable output.

Performance history (see ``docs/OBSERVABILITY.md``): ``repro bench``
measures the simulator's own wall-clock throughput (kcyc/s, per-phase
shares) over a pinned benchmark × strategy matrix and appends one
git-SHA-stamped point to the committed ``BENCH_7.json`` trajectory
(plus a one-file-per-point ``perf-history/`` store); ``repro history``
renders any metric's trajectory as a table + sparkline; ``repro
check`` gates the newest point against the trailing window (exit 1 on
degradation); and ``repro bisect`` binary-searches git history for the
first commit that crossed a metric threshold.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import bar_chart, collect_utilization, results_to_csv
from repro.assign.base import StrategySpec
from repro.cluster.config import (
    MachineConfig,
    baseline_config,
    fast_forward_config,
    mesh_config,
    two_cluster_config,
)
from repro.core.simulator import Simulator
from repro.workloads.profiles import all_profiles

_MACHINES = {
    "base": baseline_config,
    "mesh": mesh_config,
    "fast": fast_forward_config,
    "two-cluster": two_cluster_config,
}

_STRATEGIES = {
    "base": StrategySpec(kind="base"),
    "issue": StrategySpec(kind="issue", steer_latency=0),
    "issue4": StrategySpec(kind="issue", steer_latency=4),
    "friendly": StrategySpec(kind="friendly"),
    "friendly-middle": StrategySpec(kind="friendly", middle_bias=True),
    "fdrt": StrategySpec(kind="fdrt"),
    "fdrt-nopin": StrategySpec(kind="fdrt", pinning=False),
    "fdrt-intra": StrategySpec(kind="fdrt", intra_only=True),
}

_EXPERIMENTS = (
    "table1", "table2", "table3", "fig4", "fig5", "fig6", "table8",
    "fig7", "table9", "table10", "fig8", "fig9",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clustered trace cache processor simulator "
                    "(Bhargava & John, ISCA 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark catalog")

    def jobs_arg(value):
        if value != "auto":
            try:
                int(value)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"invalid worker count {value!r} "
                    "(expected an integer or 'auto')")
        return value

    def add_runtime(p):
        p.add_argument("--jobs", default=None, metavar="N", type=jobs_arg,
                       help="worker processes ('auto' = one per CPU; "
                            "default $REPRO_JOBS or 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
        p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                       help="write engine run telemetry (events.jsonl + "
                            "manifest.json) under DIR "
                            "(default $REPRO_TELEMETRY_DIR or off)")
        p.add_argument("--serve", default=None, metavar="PORT", type=int,
                       help="serve live run telemetry over HTTP on PORT "
                            "(/metrics /jobs /runs /healthz; 0 = "
                            "ephemeral; default $REPRO_SERVE_PORT or off)")

    def add_common(p):
        p.add_argument("--instructions", type=int, default=30_000,
                       help="measured instructions per run")
        p.add_argument("--warmup", type=int, default=25_000,
                       help="warmup instructions per run")
        p.add_argument("--machine", choices=sorted(_MACHINES),
                       default="base", help="machine variant")
        p.add_argument("--config-file", default=None,
                       help="JSON MachineConfig (overrides --machine)")
        add_runtime(p)

    sim = sub.add_parser("simulate", help="simulate one benchmark")
    sim.add_argument("benchmark")
    sim.add_argument("--strategy", choices=sorted(_STRATEGIES),
                     default="fdrt")
    sim.add_argument("--csv", action="store_true",
                     help="emit the result as CSV")
    add_common(sim)

    cmp_parser = sub.add_parser(
        "compare", help="compare all strategies on one benchmark")
    cmp_parser.add_argument("benchmark")
    cmp_parser.add_argument("--csv", action="store_true")
    add_common(cmp_parser)

    trace = sub.add_parser(
        "trace",
        help="record a Chrome trace-event JSON of one simulation "
             "(view in Perfetto)")
    trace.add_argument("benchmark")
    trace.add_argument("--strategy", choices=sorted(_STRATEGIES),
                       default="fdrt")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="output trace file (default trace.json)")
    trace.add_argument("--events", type=int, default=200_000, metavar="N",
                       help="ring-buffer capacity: keep the newest N "
                            "events (default 200000)")
    add_common(trace)

    util = sub.add_parser(
        "utilization", help="cluster/unit utilization report")
    util.add_argument("benchmark")
    util.add_argument("--strategy", choices=sorted(_STRATEGIES),
                      default="fdrt")
    add_common(util)

    exp = sub.add_parser(
        "experiment", help="reproduce one of the paper's tables/figures")
    exp.add_argument("artifact", choices=_EXPERIMENTS)
    exp.add_argument("--instructions", type=int, default=None)
    exp.add_argument("--warmup", type=int, default=None)
    add_runtime(exp)

    energy = sub.add_parser(
        "energy", help="activity-based energy estimate for one benchmark")
    energy.add_argument("benchmark")
    energy.add_argument("--strategy", choices=sorted(_STRATEGIES),
                        default="fdrt")
    add_common(energy)

    sweep = sub.add_parser(
        "sweep",
        help="benchmark x strategy matrix sweep (default), or a "
             "sensitivity sweep (tc / hops)")
    sweep.add_argument("parameter", nargs="?", default="matrix",
                       choices=("matrix", "tc", "hops"))
    sweep.add_argument("--benchmarks", default=None, metavar="A,B,...",
                       help="comma-separated benchmarks "
                            "(matrix mode; default: the paper's six)")
    sweep.add_argument("--strategies", default=None, metavar="A,B,...",
                       help="comma-separated strategies "
                            "(matrix mode; default: Figure 6's five)")
    sweep.add_argument("--machine", choices=sorted(_MACHINES),
                       default="base", help="machine variant (matrix mode)")
    sweep.add_argument("--instructions", type=int, default=8_000)
    sweep.add_argument("--warmup", type=int, default=15_000)
    sweep.add_argument("--report-json", default=None, metavar="PATH",
                       help="write the engine report + cache counters as "
                            "JSON to PATH ('-' = stdout; matrix mode)")
    sweep.add_argument("--resume", default=None, metavar="DIR",
                       help="resume an interrupted sweep from its "
                            "telemetry directory: completed cells replay "
                            "from the events.jsonl journal + cache, only "
                            "the remainder executes (matrix mode; "
                            "implies --telemetry-dir DIR)")
    sweep.add_argument("--keep-going", action="store_true",
                       help="quarantine cells that exhaust their retries "
                            "instead of aborting the sweep (exit code 3 "
                            "flags the partial result; matrix mode)")
    sweep.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="inject the deterministic FaultPlan in the "
                            "JSON file at PATH (chaos testing; see "
                            "docs/RESILIENCE.md; matrix mode)")
    add_runtime(sweep)

    top = sub.add_parser(
        "top",
        help="live per-job view of a running sweep "
             "(from a telemetry dir or a --serve URL)")
    top.add_argument("source",
                     help="telemetry directory or telemetry-server URL")
    top.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="seconds between refreshes (default 1)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit")
    top.add_argument("--no-color", action="store_true",
                     help="plain output even on a TTY")
    top.add_argument("--stale-after", type=float, default=None, metavar="S",
                     help="flag workers silent for S seconds as stale")

    service = sub.add_parser(
        "service",
        help="run the simulation service: HTTP job API + shared "
             "sharded result cache (see docs/SERVICE.md)")
    service.add_argument("data_dir", metavar="DATA-DIR",
                         help="durable service state: queue journal + "
                              "worker heartbeats")
    service.add_argument("--port", type=int, default=0, metavar="PORT",
                         help="listen port (default 0 = ephemeral)")
    service.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback; the API "
                              "is unauthenticated)")
    service.add_argument("--lease", type=float, default=None, metavar="S",
                         help="seconds a claimed job may go without a "
                              "heartbeat before it is re-queued "
                              "(default 60)")
    service.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result-cache root served to clients "
                              "(default $REPRO_CACHE_DIR)")
    service.add_argument("--max-depth", type=int, default=None, metavar="N",
                         help="shed submissions with 429 + Retry-After "
                              "once N jobs are pending+running "
                              "(default $REPRO_QUEUE_LIMIT; unbounded)")
    service.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="S",
                         help="seconds SIGTERM waits for in-flight jobs "
                              "to land before stopping (default 10)")
    service.add_argument("--fault-plan", default=None, metavar="PATH",
                         help="inject a deterministic FaultPlan into the "
                              "queue journal and cache store "
                              "(disk.full chaos testing)")

    worker = sub.add_parser(
        "worker",
        help="run a pull-based worker against a repro service URL")
    worker.add_argument("url", nargs="?", default=None,
                        help="service base URL "
                             "(default $REPRO_SERVICE_URL)")
    worker.add_argument("--name", default=None,
                        help="worker name reported to the service "
                             "(default host-pid)")
    worker.add_argument("--poll", type=float, default=1.0, metavar="S",
                        help="seconds between claim polls when idle "
                             "(default 1)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after executing N jobs")
    worker.add_argument("--max-idle", type=float, default=None, metavar="S",
                        help="exit after S seconds with an empty queue")
    worker.add_argument("--heartbeat-cycles", type=int, default=2_000,
                        metavar="N",
                        help="simulated cycles between HTTP heartbeats "
                             "(default 2000; 0 = no heartbeats)")
    worker.add_argument("--interval-cycles", type=int, default=None,
                        metavar="N",
                        help="attach an interval recorder to each job "
                             "and ride its last window on heartbeats "
                             "(default $REPRO_INTERVAL_CYCLES; 0 = off)")
    worker.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="inject a deterministic FaultPlan "
                             "(worker.lease_expire chaos testing)")
    worker.add_argument("--outage-grace", type=float, default=0.0,
                        metavar="S",
                        help="keep polling through a service outage for "
                             "S seconds before exiting (default 0 = "
                             "exit on first exhausted retry budget)")

    def add_matrix(p):
        p.add_argument("url", nargs="?", default=None,
                       help="service base URL "
                            "(default $REPRO_SERVICE_URL)")
        p.add_argument("--benchmarks", default=None, metavar="A,B,...",
                       help="comma-separated benchmarks "
                            "(default: the paper's six)")
        p.add_argument("--strategies", default=None, metavar="A,B,...",
                       help="comma-separated strategies "
                            "(default: Figure 6's five)")
        p.add_argument("--machine", choices=sorted(_MACHINES),
                       default="base", help="machine variant")
        p.add_argument("--instructions", type=int, default=8_000)
        p.add_argument("--warmup", type=int, default=15_000)
        p.add_argument("--seed", type=int, default=None,
                       help="workload replicate seed")

    submit = sub.add_parser(
        "submit",
        help="submit a benchmark x strategy matrix to a repro service")
    add_matrix(submit)
    submit.add_argument("--wait", action="store_true",
                        help="poll until every cell completes and print "
                             "the IPC table")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up waiting after S seconds (--wait)")

    fetch = sub.add_parser(
        "fetch",
        help="poll a repro service for a submitted matrix's results")
    add_matrix(fetch)
    fetch.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="give up after S seconds of polling")

    chaos = sub.add_parser(
        "chaos",
        help="soak the service tier under a combined fault plan: "
             "server SIGKILL + restart, worker crashes, dropped "
             "responses, 5xx bursts, disk.full (see docs/RESILIENCE.md)")
    chaos.add_argument("--workdir", default=None, metavar="DIR",
                       help="scratch directory for server data, caches, "
                            "and the fault plan (default: a temp dir)")
    chaos.add_argument("--benchmarks", default=None, metavar="A,B,...",
                       help="comma-separated benchmarks "
                            "(default: four of the paper's six)")
    chaos.add_argument("--strategies", default=None, metavar="A,B,...",
                       help="comma-separated strategies "
                            "(default: base,fdrt)")
    chaos.add_argument("--machine", choices=sorted(_MACHINES),
                       default="base", help="machine variant")
    chaos.add_argument("--instructions", type=int, default=8_000)
    chaos.add_argument("--warmup", type=int, default=15_000)
    chaos.add_argument("--seed", type=int, default=None,
                       help="workload replicate seed")
    chaos.add_argument("--plan-seed", type=int, default=1234, metavar="N",
                       help="fault-plan seed (default 1234; same seed = "
                            "same faults, replayable)")
    chaos.add_argument("--workers", type=int, default=3, metavar="N",
                       help="worker fleet size (default 3)")
    chaos.add_argument("--max-depth", type=int, default=None, metavar="N",
                       help="queue-depth bound for the backpressure "
                            "check (default: jobs - 3)")
    chaos.add_argument("--lease", type=float, default=4.0, metavar="S",
                       help="server lease seconds (default 4; short so "
                            "killed workers re-queue fast)")
    chaos.add_argument("--quick", action="store_true",
                       help="CI sizing: smaller matrix, 2 workers, "
                            "1 worker kill")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON")

    spans = sub.add_parser(
        "spans",
        help="render distributed traces: per-trace waterfall + "
             "critical-path summary (see docs/OBSERVABILITY.md)")
    spans.add_argument("source",
                       help="directory holding spans.jsonl (or the file "
                            "itself), or a repro service URL")
    spans.add_argument("--trace", default=None, metavar="ID",
                       help="show only traces whose id starts with ID")
    spans.add_argument("--limit", type=int, default=20, metavar="N",
                       help="traces to render (default 20)")
    spans.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (the default; "
                            "accepted for symmetry with `repro top`)")
    spans.add_argument("--perfetto", default=None, metavar="PATH",
                       help="also write a Chrome/Perfetto trace-event "
                            "JSON file to PATH")
    spans.add_argument("--cycle-trace", default=None, metavar="PATH",
                       help="merge a `repro trace` cycle-trace JSON "
                            "into the --perfetto export")

    cache = sub.add_parser(
        "cache", help="inspect and maintain the on-disk result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats",
        help="entry count, bytes, per-shard distribution, hit rate "
             "since last reset")
    cache_stats.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="cache root (default $REPRO_CACHE_DIR)")
    cache_stats.add_argument("--json", action="store_true",
                             help="emit the report as JSON")
    cache_stats.add_argument("--reset", action="store_true",
                             help="zero the persistent counters after "
                                  "reporting")
    cache_gc = cache_sub.add_parser(
        "gc",
        help="migrate legacy entries and apply TTL/LRU eviction")
    cache_gc.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="cache root (default $REPRO_CACHE_DIR)")
    cache_gc.add_argument("--ttl", type=float, default=None, metavar="S",
                          help="evict entries unused for more than S "
                               "seconds")
    cache_gc.add_argument("--max-entries", type=int, default=None,
                          metavar="N",
                          help="evict least-recently-used entries down "
                               "to N")
    cache_gc.add_argument("--max-bytes", type=int, default=None,
                          metavar="B",
                          help="evict least-recently-used entries down "
                               "to B bytes")

    profile = sub.add_parser(
        "profile",
        help="per-phase wall-clock profile of one simulation "
             "(fetch/assign/execute/fill; speedscope export)")
    profile.add_argument("benchmark")
    profile.add_argument("--strategy", choices=sorted(_STRATEGIES),
                         default="fdrt")
    profile.add_argument("--out", default=None, metavar="PATH",
                         help="write a speedscope JSON profile to PATH "
                              "(open in https://www.speedscope.app)")
    profile.add_argument("--sample-cycles", type=int, default=1_000,
                         metavar="N",
                         help="cycles per speedscope sample frame "
                              "(default 1000; 0 = totals only)")
    add_common(profile)

    timeline = sub.add_parser(
        "timeline",
        help="windowed time-series of one simulation + program-phase "
             "detection: sparklines, lost-slot heatmap, per-phase "
             "attribution (see docs/OBSERVABILITY.md)")
    timeline.add_argument("benchmark", nargs="?", default=None,
                          help="benchmark name (omit with --phased)")
    timeline.add_argument("--strategy", choices=sorted(_STRATEGIES),
                          default="fdrt")
    timeline.add_argument("--seed", type=int, default=None,
                          help="workload replicate seed")
    timeline.add_argument("--interval-cycles", type=int, default=None,
                          metavar="N",
                          help="cycles per window (default "
                               "$REPRO_INTERVAL_CYCLES or 1000)")
    timeline.add_argument("--phased", default=None, metavar="A,B,...",
                          help="simulate a synthetic phased workload "
                               "instead of a benchmark: comma-separated "
                               "segment kinds (compute, memory, branchy) "
                               "looped in order")
    timeline.add_argument("--threshold", type=float, default=None,
                          metavar="D",
                          help="change-point distance threshold "
                               "(default 0.25)")
    timeline.add_argument("--json", default=None, metavar="PATH",
                          help="write meta + windows + phases as one "
                               "JSON document to PATH ('-' = stdout; "
                               "readable by `repro analyze --phases`)")
    timeline.add_argument("--markdown", default=None, metavar="PATH",
                          help="write the per-phase table as markdown "
                               "to PATH")
    timeline.add_argument("--perfetto", default=None, metavar="PATH",
                          help="write the series as Chrome-trace counter "
                               "tracks to PATH (open in Perfetto)")
    timeline.add_argument("--cycle-trace", default=None, metavar="PATH",
                          help="merge a `repro trace` cycle-trace JSON "
                               "into the --perfetto export")
    timeline.add_argument("--no-color", action="store_true",
                          help="plain output even on a TTY")
    add_common(timeline)

    analyze = sub.add_parser(
        "analyze",
        help="performance report from a telemetry directory: top-down "
             "IPC-loss attribution + assignment quality")
    analyze.add_argument("telemetry", nargs="?", default=None,
                         help="telemetry directory (or manifest.json "
                              "path); optional with --phases")
    analyze.add_argument("--markdown", default=None, metavar="PATH",
                         help="also write the report as markdown to PATH")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as machine-readable JSON "
                              "instead of the terminal dashboard")
    analyze.add_argument("--phases", nargs="+", default=None,
                         metavar="TIMELINE",
                         help="per-phase attribution from one or more "
                              "`repro timeline --json` exports; two or "
                              "more add a phase-by-phase strategy "
                              "comparison (winner per phase id)")

    baseline = sub.add_parser(
        "baseline",
        help="capture golden per-(benchmark x strategy) metrics with "
             "multi-seed noise bands")
    baseline.add_argument("action", choices=("capture",))
    baseline.add_argument("--out", default="baselines/base.json",
                          metavar="PATH", help="baseline JSON to write")
    baseline.add_argument("--benchmarks", default=None, metavar="A,B,...",
                          help="comma-separated benchmarks "
                               "(default: the paper's six)")
    baseline.add_argument("--strategies", default=None, metavar="A,B,...",
                          help="comma-separated strategies "
                               "(default: base,friendly,fdrt)")
    baseline.add_argument("--seeds", default="1,2", metavar="S1,S2,...",
                          help="replicate workload seeds for the noise "
                               "band (default 1,2)")
    add_common(baseline)

    diff = sub.add_parser(
        "diff",
        help="compare two runs (or a run against a baseline); exits 1 "
             "on out-of-noise-band regressions")
    diff.add_argument("a", metavar="RUN-A",
                      help="reference run: telemetry dir or baseline/"
                           "manifest JSON (the candidate with --against)")
    diff.add_argument("b", metavar="RUN-B", nargs="?", default=None,
                      help="candidate run (omit when using --against)")
    diff.add_argument("--against", default=None, metavar="PATH",
                      help="reference to compare RUN-A against "
                           "(typically a committed baseline)")
    diff.add_argument("--markdown", default=None, metavar="PATH",
                      help="also write the diff as markdown to PATH")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as machine-readable JSON "
                           "instead of the terminal summary (the exit "
                           "code still gates)")

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmark of the simulator itself over the "
             "pinned matrix; appends one point to the perf history")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke budget (~3s) instead of the full "
                            "committed-trajectory budget (~15s)")
    bench.add_argument("--reps", type=int, default=None, metavar="N",
                       help="repetitions per cell (default: 3 full, "
                            "2 quick)")
    bench.add_argument("--history-file", default=None, metavar="PATH",
                       help="trajectory JSON to append to (default "
                            "$REPRO_HISTORY_FILE or BENCH_7.json)")
    bench.add_argument("--store-dir", default="perf-history",
                       metavar="DIR",
                       help="also drop the point into this one-file-per-"
                            "point store ('' = skip; default "
                            "perf-history)")
    bench.add_argument("--no-append", action="store_true",
                       help="measure and print only; write nothing")
    bench.add_argument("--json", action="store_true",
                       help="emit the measured point as JSON on stdout")

    history = sub.add_parser(
        "history",
        help="table + sparkline of one metric across the perf history")
    history.add_argument("metric", nargs="?", default="wall.kcyc_per_s",
                         help="metric to trace (default wall.kcyc_per_s; "
                              "e.g. ipc, tc_hit_rate)")
    history.add_argument("--entry", default=None, metavar="BENCH|STRAT",
                         help="restrict to one matrix entry, e.g. "
                              "'gzip|FDRT' (default: mean over entries)")
    history.add_argument("--history-file", default=None, metavar="PATH",
                         help="trajectory JSON or perf-history directory "
                              "(default $REPRO_HISTORY_FILE or "
                              "BENCH_7.json)")
    history.add_argument("--last", type=int, default=None, metavar="N",
                         help="show only the newest N points")
    history.add_argument("--markdown", default=None, metavar="PATH",
                         help="also write the trajectory as markdown "
                              "to PATH")

    check = sub.add_parser(
        "check",
        help="gate the newest perf-history point against the trailing "
             "window; exits 1 on degradation, 2 on no history")
    check.add_argument("--history-file", default=None, metavar="PATH",
                       help="trajectory JSON or perf-history directory "
                            "(default $REPRO_HISTORY_FILE or "
                            "BENCH_7.json)")
    check.add_argument("--window", type=int, default=5, metavar="K",
                       help="reference points consulted (default 5)")
    check.add_argument("--markdown", default=None, metavar="PATH",
                       help="also write the verdict as markdown to PATH")
    check.add_argument("--json", action="store_true",
                       help="emit the verdict as machine-readable JSON")

    bisect = sub.add_parser(
        "bisect",
        help="binary-search git history for the first commit that "
             "crossed a metric threshold")
    bisect.add_argument("good", help="known-good commit (exclusive)")
    bisect.add_argument("bad", nargs="?", default="HEAD",
                        help="known-bad commit (default HEAD)")
    bisect.add_argument("--repo", default=".", metavar="DIR",
                        help="git repository to bisect (default .)")
    bisect.add_argument("--threshold", type=float, required=True,
                        metavar="X",
                        help="a commit measuring on the unfavourable "
                             "side of X is bad")
    bisect.add_argument("--direction", choices=("higher", "lower"),
                        default="higher",
                        help="which side of the threshold is GOOD "
                             "(default: higher values are good)")
    # dest avoids clobbering the subparser's own `command` slot.
    bisect.add_argument("--command", dest="measure_cmd", default=None,
                        metavar="CMD",
                        help="measurement command run per probed commit "
                             "(in a detached worktree; last stdout line "
                             "= value).  Default: the quick bench "
                             "matrix's mean wall.kcyc_per_s")
    bisect.add_argument("--metric", default="wall.kcyc_per_s",
                        help="metric the default measurement reports "
                             "(default wall.kcyc_per_s)")
    return parser


def _machine(args) -> MachineConfig:
    if getattr(args, "config_file", None):
        return MachineConfig.from_json(args.config_file)
    return _MACHINES[args.machine]()


def _run(benchmark: str, spec: StrategySpec, args) -> tuple:
    simulator = Simulator(benchmark, spec, config=_machine(args))
    if args.warmup:
        simulator.warmup(args.warmup)
    return simulator, simulator.run(args.instructions)


def _cmd_list(_args) -> int:
    profiles = all_profiles()
    width = max(len(name) for name in profiles)
    for name in sorted(profiles):
        print(f"{name.ljust(width)}  {profiles[name].description}")
    return 0


def _cmd_simulate(args) -> int:
    spec = _STRATEGIES[args.strategy]
    _, result = _run(args.benchmark, spec, args)
    if args.csv:
        print(results_to_csv([result]), end="")
        return 0
    print(f"benchmark          : {result.benchmark}")
    print(f"strategy           : {result.strategy}")
    print(f"IPC                : {result.ipc:.3f}")
    print(f"from trace cache   : {result.pct_tc_instructions:.1%}")
    print(f"mean trace size    : {result.avg_trace_size:.1f}")
    print(f"mispredict rate    : {result.mispredict_rate:.2%}")
    print(f"intra-cluster fwd  : {result.pct_intra_cluster_forwarding:.1%}")
    print(f"mean fwd distance  : {result.avg_forward_distance:.2f} clusters")
    return 0


#: Strategy presentation order for ``compare`` and matrix sweeps.
_COMPARE_ORDER = ("base", "issue", "issue4", "friendly", "fdrt")


def _cmd_compare(args) -> int:
    from repro.experiments import run_matrix

    specs = [_STRATEGIES[name] for name in _COMPARE_ORDER]
    matrix = run_matrix(
        [args.benchmark], specs, config=_machine(args),
        instructions=args.instructions, warmup=args.warmup,
    )
    results = [matrix[(args.benchmark, spec.label)] for spec in specs]
    base = results[0]
    speedups = {r.strategy: r.speedup_over(base) for r in results}
    if args.csv:
        print(results_to_csv(results), end="")
        return 0
    print(bar_chart(speedups, title=f"speedup over base — {args.benchmark}",
                    baseline=1.0))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import CycleTracer

    if args.events <= 0:
        print(f"error: --events must be positive (got {args.events})",
              file=sys.stderr)
        return 2
    try:
        # Probe writability up front: a multi-minute simulation that
        # dies on the final write is the worst possible failure mode.
        with open(args.out, "a", encoding="utf-8"):
            pass
    except OSError as error:
        print(f"error: cannot write --out {args.out}: {error}",
              file=sys.stderr)
        return 2

    spec = _STRATEGIES[args.strategy]
    simulator = Simulator(args.benchmark, spec, config=_machine(args))
    if args.warmup:
        simulator.warmup(args.warmup)
    tracer = CycleTracer(capacity=args.events)
    with tracer.attach(simulator.pipeline):
        result = simulator.run(args.instructions)
    tracer.write(args.out)
    print(f"wrote {args.out}: {len(tracer.events)} events "
          f"({tracer.dropped} dropped by the ring buffer), "
          f"{result.retired} instructions over {result.cycles} cycles")
    for lane, count in sorted(tracer.lane_counts().items()):
        print(f"  {lane:<12} {count:>8} events")
    print("open in https://ui.perfetto.dev (1 ts = 1 cycle)")
    return 0


def _cmd_utilization(args) -> int:
    spec = _STRATEGIES[args.strategy]
    simulator, _ = _run(args.benchmark, spec, args)
    print(collect_utilization(simulator.pipeline).render())
    return 0


def _cmd_experiment(args) -> int:
    import repro.experiments as ex

    budgets = {}
    if args.instructions:
        budgets["instructions"] = args.instructions
    if args.warmup is not None:
        budgets["warmup"] = args.warmup

    def char():
        return ex.run_characterization(**budgets)

    runners = {
        "table1": lambda: ex.render_table1(char()),
        "table2": lambda: ex.render_table2(char()),
        "table3": lambda: ex.render_table3(char()),
        "fig4": lambda: ex.render_figure4(char()),
        "fig5": lambda: ex.render_figure5(ex.run_latency_study(**budgets)),
        "fig6": lambda: ex.render_figure6(
            ex.run_strategy_comparison(**budgets)),
        "table8": lambda: ex.render_table8(
            ex.run_strategy_comparison(**budgets)),
        "fig7": lambda: ex.render_figure7(ex.run_fdrt_analysis(**budgets)),
        "table9": lambda: ex.render_table9(ex.run_fdrt_analysis(**budgets)),
        "table10": lambda: ex.render_table10(ex.run_fdrt_analysis(**budgets)),
        "fig8": lambda: ex.render_figure8(ex.run_robustness(**budgets)),
        "fig9": lambda: ex.render_figure9(ex.run_suite_study(**budgets)),
    }
    print(runners[args.artifact]())
    return 0


def _cmd_energy(args) -> int:
    from repro.analysis import estimate_energy

    spec = _STRATEGIES[args.strategy]
    simulator, _ = _run(args.benchmark, spec, args)
    print(estimate_energy(simulator.pipeline).render())
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import (
        render_sweep,
        run_hop_latency_sweep,
        run_tc_capacity_sweep,
    )

    if args.parameter == "matrix":
        return _cmd_sweep_matrix(args)
    budgets = dict(instructions=args.instructions, warmup=args.warmup)
    if args.parameter == "tc":
        result = run_tc_capacity_sweep(**budgets)
    else:
        result = run_hop_latency_sweep(**budgets)
    print(render_sweep(result))
    return 0


def _cmd_sweep_matrix(args) -> int:
    """Full benchmark × strategy matrix with live progress + cache stats.

    Exit codes: 0 success, 1 jobs failed (no ``--keep-going``), 2 usage
    error, 3 partial success (cells quarantined under ``--keep-going``),
    130 interrupted by SIGINT/SIGTERM (resume with ``--resume``).
    """
    from repro.experiments import ExperimentTable, run_matrix
    from repro.runtime import (
        ExperimentEngine,
        JobFailedError,
        RunInterrupted,
        progress_printer,
    )
    from repro.workloads.suites import SPECINT2000_SELECTED

    benchmarks = (_split_tokens(args.benchmarks) if args.benchmarks
                  else list(SPECINT2000_SELECTED))
    names = (_split_tokens(args.strategies) if args.strategies
             else list(_COMPARE_ORDER))
    if not benchmarks or not names:
        print("error: empty benchmark/strategy selection", file=sys.stderr)
        return 2
    try:
        specs = [_STRATEGIES[name] for name in names]
    except KeyError as error:
        print(f"error: unknown strategy {error} "
              f"(choices: {', '.join(sorted(_STRATEGIES))})", file=sys.stderr)
        return 2

    faults = None
    if args.fault_plan:
        from repro.resilience import FaultPlan

        try:
            faults = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"error: cannot load --fault-plan {args.fault_plan}: "
                  f"{error}", file=sys.stderr)
            return 2
        print(f"fault plan: {len(faults.specs)} spec(s), "
              f"key {faults.key[:12]}…", file=sys.stderr)

    resume = None
    telemetry = args.telemetry_dir
    if args.resume:
        from repro.resilience import load_resume_state

        try:
            resume = load_resume_state(args.resume)
        except (OSError, ValueError) as error:
            print(f"error: cannot resume from {args.resume}: {error}",
                  file=sys.stderr)
            return 2
        print(resume.render(), file=sys.stderr)
        # Keep journaling into the same directory so the resumed run
        # finalizes the manifest it is completing.
        telemetry = telemetry or args.resume

    engine = ExperimentEngine(
        progress=progress_printer(), telemetry=telemetry,
        faults=faults, keep_going=args.keep_going, resume=resume,
    )
    try:
        matrix = run_matrix(
            benchmarks, specs, config=_MACHINES[args.machine](),
            instructions=args.instructions, warmup=args.warmup,
            engine=engine,
        )
    except RunInterrupted as stop:
        print(f"\n{stop}; completed cells are journaled", file=sys.stderr)
        if engine.telemetry is not None:
            print(f"resume with: repro sweep --resume "
                  f"{engine.telemetry.directory}", file=sys.stderr)
        return 130
    except JobFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        for failure in error.failures:
            print(f"  [{failure.index}] {failure.job.label}: "
                  f"{failure.reason} ({failure.attempts} attempt(s))",
                  file=sys.stderr)
        print("hint: --keep-going quarantines failing cells instead of "
              "aborting the sweep", file=sys.stderr)
        return 1
    finally:
        engine.close()

    table = ExperimentTable(
        f"IPC — {len(benchmarks)}x{len(specs)} matrix "
        f"({args.instructions} instructions)",
        ["benchmark"] + [spec.label for spec in specs],
    )
    for benchmark in benchmarks:
        row = []
        for spec in specs:
            result = matrix[(benchmark, spec.label)]
            row.append(f"{result.ipc:.3f}" if result is not None
                       else "FAILED")
        table.add_row(benchmark, *row)
    print(table.render())
    print()
    print(engine.report.render())
    print(engine.cache.stats.render())
    if engine.telemetry is not None:
        print(f"telemetry: {engine.telemetry.manifest_path}")
    if args.report_json:
        import json

        payload = json.dumps(
            {"report": engine.report.to_dict(),
             "cache": engine.cache.stats.to_dict()},
            indent=2, sort_keys=True,
        )
        if args.report_json == "-":
            print(payload)
        else:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 3 if engine.report.failed else 0


def _split_tokens(value: str) -> List[str]:
    """Comma-split a CLI list, dropping empty tokens (``"a,,b"``)."""
    return [token.strip() for token in value.split(",") if token.strip()]


def _cmd_top(args) -> int:
    from repro.obs.top import run_top

    return run_top(
        args.source,
        interval=args.interval,
        once=args.once,
        ansi=False if args.no_color else None,
        stale_after=args.stale_after,
    )


def _resolve_url(args) -> Optional[str]:
    from repro.runtime.settings import resolve_service_url

    url = resolve_service_url(args.url)
    if url is None:
        print("error: no service URL (give one, or set "
              "$REPRO_SERVICE_URL)", file=sys.stderr)
    return url


def _matrix_cells(args):
    """The (benchmarks, specs, jobs) triple submit/fetch operate on."""
    from repro.runtime import matrix_jobs
    from repro.workloads.suites import SPECINT2000_SELECTED

    benchmarks = (_split_tokens(args.benchmarks) if args.benchmarks
                  else list(SPECINT2000_SELECTED))
    names = (_split_tokens(args.strategies) if args.strategies
             else list(_COMPARE_ORDER))
    if not benchmarks or not names:
        raise ValueError("empty benchmark/strategy selection")
    try:
        specs = [_STRATEGIES[name] for name in names]
    except KeyError as error:
        raise ValueError(
            f"unknown strategy {error} "
            f"(choices: {', '.join(sorted(_STRATEGIES))})") from None
    grid = matrix_jobs(
        benchmarks, specs, config=_MACHINES[args.machine](),
        instructions=args.instructions, warmup=args.warmup,
        seed=args.seed,
    )
    jobs = [grid[(benchmark, spec.label)]
            for benchmark in benchmarks for spec in specs]
    return benchmarks, specs, jobs


def _render_remote_table(benchmarks, specs, jobs, results) -> str:
    from repro.experiments import ExperimentTable

    by_key = {job.key: result for job, result in zip(jobs, results)}
    table = ExperimentTable(
        f"IPC — {len(benchmarks)}x{len(specs)} matrix (via service)",
        ["benchmark"] + [spec.label for spec in specs],
    )
    cells = iter(jobs)
    for benchmark in benchmarks:
        row = []
        for _spec in specs:
            result = by_key[next(cells).key]
            row.append(f"{result.ipc:.3f}")
        table.add_row(benchmark, *row)
    return table.render()


def _load_fault_plan(path):
    """Load a FaultPlan file for a CLI flag (None passes through)."""
    if not path:
        return None
    from repro.resilience import FaultPlan

    return FaultPlan.from_file(path)


def _cmd_service(args) -> int:
    import signal
    import time as _time

    from repro.runtime import ResultCache
    from repro.runtime.settings import resolve_queue_limit
    from repro.service import DEFAULT_LEASE_SECONDS, ServiceServer

    try:
        faults = _load_fault_plan(args.fault_plan)
    except (OSError, ValueError) as error:
        print(f"error: cannot load --fault-plan {args.fault_plan}: "
              f"{error}", file=sys.stderr)
        return 2
    cache = ResultCache(root=args.cache_dir, remote=False)
    server = ServiceServer(
        args.data_dir, port=args.port, host=args.host, cache=cache,
        lease_seconds=(args.lease if args.lease is not None
                       else DEFAULT_LEASE_SECONDS),
        max_depth=resolve_queue_limit(args.max_depth),
        faults=faults,
    )
    # SIGTERM = graceful drain: stop granting claims, shed new
    # submissions, give in-flight completions --drain-grace seconds to
    # land (journaled), then stop.  SIGINT stays an immediate stop.
    draining = []
    signal.signal(signal.SIGTERM, lambda *_: draining.append(True))
    url = server.start()
    counts = server.queue.counts()
    resumed = counts["pending"] + counts["running"]
    print(f"service: {url} (data: {server.data_dir}, "
          f"cache: {server.cache.root}, "
          f"{server.cache.shards} shards, "
          f"lease {server.queue.lease_seconds:.0f}s"
          + (f", max depth {server.max_depth}"
             if server.max_depth is not None else "")
          + ")")
    if resumed:
        print(f"resumed {resumed} unfinished job(s) from the queue "
              f"journal")
    print("endpoints: POST /jobs, GET /jobs/<key>, GET /queue, "
          "GET /cache/<key>, GET /metrics  (ctrl-c to stop)")
    try:
        while not draining:
            _time.sleep(0.2)
        server.drain()
        print("SIGTERM: draining (no new claims; waiting up to "
              f"{args.drain_grace:.0f}s for in-flight jobs)",
              file=sys.stderr)
        deadline = _time.monotonic() + max(0.0, args.drain_grace)
        while _time.monotonic() < deadline:
            if server.queue.counts()["running"] == 0:
                break
            _time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print("service stopped", file=sys.stderr)
    return 0


def _cmd_worker(args) -> int:
    from repro.service import WorkerAgent

    url = _resolve_url(args)
    if url is None:
        return 2
    try:
        faults = _load_fault_plan(args.fault_plan)
    except (OSError, ValueError) as error:
        print(f"error: cannot load --fault-plan {args.fault_plan}: "
              f"{error}", file=sys.stderr)
        return 2
    agent = WorkerAgent(
        url, name=args.name, poll_interval=args.poll,
        max_jobs=args.max_jobs, max_idle=args.max_idle,
        heartbeat_cycles=args.heartbeat_cycles,
        interval_cycles=args.interval_cycles, faults=faults,
        outage_grace=args.outage_grace,
    )
    return agent.run()


def _cmd_chaos(args) -> int:
    import json as _json
    import tempfile

    from repro.service.chaos import run_chaos_soak

    if args.benchmarks is None:
        from repro.workloads.suites import SPECINT2000_SELECTED

        count = 2 if args.quick else 4
        args.benchmarks = ",".join(list(SPECINT2000_SELECTED)[:count])
    if args.strategies is None:
        args.strategies = "base,fdrt"
    try:
        _benchmarks, _specs, jobs = _matrix_cells(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    report = run_chaos_soak(
        jobs, workdir,
        seed=args.plan_seed,
        workers=args.workers,
        lease_seconds=args.lease,
        max_depth=args.max_depth,
        quick=args.quick,
        stream=sys.stderr,
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_submit(args) -> int:
    from repro.service import (
        JobRejected,
        RemoteJobFailed,
        ServiceUnavailable,
        fetch_results,
        submit_jobs,
    )

    url = _resolve_url(args)
    if url is None:
        return 2
    try:
        benchmarks, specs, jobs = _matrix_cells(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        states = submit_jobs(url, jobs, stream=sys.stderr)
    except JobRejected as error:
        print(f"error: submission rejected: {error}", file=sys.stderr)
        return 2
    except ServiceUnavailable as error:
        print(f"error: cannot reach service at {url} ({error})",
              file=sys.stderr)
        return 1
    queued = sum(1 for state in states.values() if state != "done")
    print(f"submitted {len(jobs)} cell(s): {len(jobs) - queued} already "
          f"done, {queued} queued")
    if not args.wait:
        if queued:
            print(f"fetch results with: repro fetch {url} [...]")
        return 0
    try:
        results = fetch_results(url, jobs, timeout=args.timeout,
                                stream=sys.stderr)
    except RemoteJobFailed as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ServiceUnavailable, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(_render_remote_table(benchmarks, specs, jobs, results))
    _print_latency(url, jobs)
    return 0


def _cmd_fetch(args) -> int:
    from repro.service import (
        RemoteJobFailed,
        ServiceUnavailable,
        fetch_results,
    )

    url = _resolve_url(args)
    if url is None:
        return 2
    try:
        benchmarks, specs, jobs = _matrix_cells(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        results = fetch_results(url, jobs, timeout=args.timeout,
                                stream=sys.stderr)
    except RemoteJobFailed as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ServiceUnavailable, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(_render_remote_table(benchmarks, specs, jobs, results))
    _print_latency(url, jobs)
    return 0


def _cmd_spans(args) -> int:
    import json

    from repro.obs.spans import (
        read_spans,
        render_critical_path,
        render_spans,
        spans_to_chrome,
    )

    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.request

        try:
            with urllib.request.urlopen(
                f"{source.rstrip('/')}/spans", timeout=10.0
            ) as response:
                document = json.load(response)
            spans = [record for record in document.get("spans", [])
                     if isinstance(record, dict)]
        except (OSError, ValueError) as error:
            print(f"error: cannot fetch spans from {source} ({error})",
                  file=sys.stderr)
            return 1
    else:
        spans = read_spans(source)
    if args.trace:
        spans = [record for record in spans
                 if str(record.get("trace", "")).startswith(args.trace)]
    from repro.runtime.observe import stream_is_tty

    print(render_spans(spans, limit=args.limit,
                       ansi=stream_is_tty(sys.stdout)))
    if spans:
        print()
        print(render_critical_path(spans))
    if args.perfetto:
        cycle = None
        if args.cycle_trace:
            try:
                with open(args.cycle_trace, encoding="utf-8") as handle:
                    cycle = json.load(handle)
            except (OSError, ValueError) as error:
                print(f"error: cannot read --cycle-trace "
                      f"{args.cycle_trace}: {error}", file=sys.stderr)
                return 2
        chrome = spans_to_chrome(spans, cycle_trace=cycle)
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle)
        print(f"wrote Perfetto trace: {args.perfetto}", file=sys.stderr)
    return 0


def _print_latency(url, jobs) -> None:
    """The submitted→claimed→done one-liner after a fetch (best-effort)."""
    from repro.service import latency_breakdown, render_latency

    line = render_latency(latency_breakdown(url, jobs))
    if line:
        print(line)


def _cmd_cache(args) -> int:
    import json

    from repro.runtime import ResultCache

    cache = ResultCache(root=args.cache_dir, remote=False)
    if args.cache_command == "gc":
        report = cache.gc(ttl=args.ttl, max_entries=args.max_entries,
                          max_bytes=args.max_bytes)
        print(f"cache gc: {report['migrated']} migrated, "
              f"{report['evicted_ttl']} evicted by TTL, "
              f"{report['evicted_lru']} evicted by LRU; "
              f"{report['entries']} entries "
              f"({report['bytes']} bytes) remain")
        return 0
    scan = cache.scan()
    persistent = cache.persistent_stats()
    if args.json:
        print(json.dumps({"scan": scan, "since_reset": persistent},
                         indent=2, sort_keys=True))
    else:
        print(f"cache root : {scan['root']}")
        print(f"layout     : {scan['shards']} shards"
              + (f" ({scan['legacy_entries']} legacy entries pending "
                 f"migration)" if scan['legacy_entries'] else ""))
        print(f"entries    : {scan['entries']} ({scan['bytes']} bytes)")
        if scan["per_shard"]:
            largest = sorted(
                scan["per_shard"].items(),
                key=lambda item: -item[1]["entries"])[:8]
            spread = ", ".join(
                f"shard-{index:03d}: {record['entries']}"
                for index, record in largest)
            print(f"per shard  : {spread}")
        looked = (persistent["hits"] + persistent["remote_hits"]
                  + persistent["misses"])
        print(f"since reset: {persistent['hits']} hits, "
              f"{persistent['remote_hits']} remote hits, "
              f"{persistent['misses']} misses "
              f"({persistent['hit_rate']:.0%} of {looked} lookups), "
              f"{persistent['stores']} stores, "
              f"{persistent['evicted']} evicted, "
              f"{persistent['processes']} process(es)")
    if args.reset:
        removed = cache.reset_persistent_stats()
        print(f"reset: cleared {removed} counter file(s)")
    return 0


def _cmd_profile(args) -> int:
    from repro.core.simulator import simulate
    from repro.obs.profiler import PhaseProfiler

    if args.sample_cycles < 0:
        print(f"error: --sample-cycles must be >= 0 "
              f"(got {args.sample_cycles})", file=sys.stderr)
        return 2
    spec = _STRATEGIES[args.strategy]
    profiler = PhaseProfiler(sample_cycles=args.sample_cycles)
    result = simulate(
        args.benchmark, spec, config=_machine(args),
        instructions=args.instructions, warmup=args.warmup,
        profiler=profiler,
    )
    print(profiler.render())
    print(f"simulated: {result.retired} instructions over "
          f"{result.cycles} cycles (IPC {result.ipc:.3f})")
    if args.out:
        profiler.write(args.out)
        print(f"speedscope profile: {args.out} "
              f"(open in https://www.speedscope.app)")
    return 0


def _cmd_timeline(args) -> int:
    import json

    from repro.analysis import render_timeline, segment_timeline
    from repro.analysis.phases import DEFAULT_THRESHOLD
    from repro.core.simulator import simulate
    from repro.obs.timeseries import (
        DEFAULT_INTERVAL_CYCLES,
        IntervalRecorder,
    )
    from repro.runtime.observe import stream_is_tty
    from repro.runtime.settings import resolve_interval_cycles

    if (args.benchmark is None) == (args.phased is None):
        print("error: give a benchmark or --phased KINDS (not both)",
              file=sys.stderr)
        return 2
    try:
        interval = resolve_interval_cycles(args.interval_cycles)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if interval <= 0:
        interval = DEFAULT_INTERVAL_CYCLES
    if args.phased is not None:
        from repro.workloads import phased_program

        try:
            subject = phased_program(tuple(_split_tokens(args.phased)),
                                     seed=args.seed or 1)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        label = subject.name
    else:
        subject = label = args.benchmark
    cycle = None
    if args.cycle_trace:
        try:
            with open(args.cycle_trace, encoding="utf-8") as handle:
                cycle = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read --cycle-trace "
                  f"{args.cycle_trace}: {error}", file=sys.stderr)
            return 2
    recorder = IntervalRecorder(interval_cycles=interval)
    result = simulate(
        subject, _STRATEGIES[args.strategy], config=_machine(args),
        instructions=args.instructions, warmup=args.warmup,
        seed=args.seed, recorder=recorder,
    )
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    report = segment_timeline(
        recorder.windows, threshold=threshold,
        meta=dict(recorder.meta(), benchmark=label,
                  strategy=args.strategy, seed=args.seed))
    document = {
        "meta": report.meta,
        "windows": list(recorder.windows),
        "phases": report.to_dict(),
    }
    payload = json.dumps(document, indent=2, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        ansi = (not args.no_color) and stream_is_tty(sys.stdout)
        print(f"timeline — {label} / {args.strategy}  "
              f"({interval} cycles per window, "
              f"{len(recorder.windows)} window(s)"
              + (f", {recorder.dropped} dropped"
                 if recorder.dropped else "") + ")")
        print()
        print(render_timeline(recorder.windows, report=report, ansi=ansi))
        print()
        print(report.render())
        print()
        print(f"simulated: {result.retired} instructions over "
              f"{result.cycles} cycles (IPC {result.ipc:.3f})")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"timeline JSON: {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown() + "\n")
        if args.json != "-":
            print(f"markdown report: {args.markdown}")
    if args.perfetto:
        recorder.write_chrome_trace(args.perfetto, cycle_trace=cycle)
        if args.json != "-":
            print(f"Perfetto counter tracks: {args.perfetto}")
    return 0


def _cmd_analyze(args) -> int:
    import json
    import os

    from repro.analysis import analyze_manifest

    if args.telemetry is None and not args.phases:
        print("error: give a telemetry directory or --phases TIMELINE...",
              file=sys.stderr)
        return 2
    report = None
    if args.telemetry is not None:
        path = args.telemetry
        if os.path.isdir(path):
            path = os.path.join(path, "manifest.json")
        try:
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as error:
            print(f"error: cannot read manifest: {error}", file=sys.stderr)
            return 2
        report = analyze_manifest(manifest)
    phase_reports = {}
    if args.phases:
        from repro.analysis import load_timeline, segment_timeline

        for file_path in args.phases:
            try:
                meta, windows = load_timeline(file_path)
            except OSError as error:
                print(f"error: cannot read timeline {file_path}: {error}",
                      file=sys.stderr)
                return 2
            label = (meta.get("strategy")
                     or os.path.splitext(os.path.basename(file_path))[0])
            if label in phase_reports:
                label = f"{label}:{len(phase_reports)}"
            phase_reports[label] = segment_timeline(windows, meta=meta)
    document = {}
    sections = []
    markdown = []
    if report is not None:
        document["report"] = report.to_dict()
        sections.append(report.render())
        markdown.append(report.to_markdown())
    if phase_reports:
        from repro.analysis import compare_timelines, render_comparison

        document["phases"] = {label: r.to_dict()
                              for label, r in phase_reports.items()}
        for label, phase_report in phase_reports.items():
            sections.append(f"phases — {label}\n"
                            + phase_report.render())
            markdown.append(f"## Phases — {label}\n\n"
                            + phase_report.to_markdown())
        if len(phase_reports) > 1:
            rows = compare_timelines(phase_reports)
            document["comparison"] = rows
            sections.append("per-phase strategy comparison "
                            "(cycle-weighted mean IPC)\n"
                            + render_comparison(rows))
    if args.json:
        payload = (document["report"] if set(document) == {"report"}
                   else document)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("\n\n".join(sections))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(markdown) + "\n")
        if not args.json:
            print(f"\nmarkdown report: {args.markdown}")
    return 0


def _cmd_baseline(args) -> int:
    from repro.analysis import capture_baseline, write_baseline
    from repro.runtime import ExperimentEngine, progress_printer
    from repro.workloads.suites import SPECINT2000_SELECTED

    benchmarks = (_split_tokens(args.benchmarks) if args.benchmarks
                  else list(SPECINT2000_SELECTED))
    names = (_split_tokens(args.strategies) if args.strategies
             else ["base", "friendly", "fdrt"])
    if not benchmarks or not names:
        print("error: empty benchmark/strategy selection", file=sys.stderr)
        return 2
    try:
        specs = [_STRATEGIES[name] for name in names]
    except KeyError as error:
        print(f"error: unknown strategy {error} "
              f"(choices: {', '.join(sorted(_STRATEGIES))})", file=sys.stderr)
        return 2
    try:
        seeds = [int(token) for token in _split_tokens(args.seeds)]
    except ValueError:
        print(f"error: --seeds must be comma-separated integers "
              f"(got {args.seeds!r})", file=sys.stderr)
        return 2

    document = capture_baseline(
        benchmarks, specs, config=_machine(args), machine=args.machine,
        instructions=args.instructions, warmup=args.warmup, seeds=seeds,
        engine=ExperimentEngine(progress=progress_printer()),
    )
    path = write_baseline(args.out, document)
    print(f"baseline: {path} — {len(document['entries'])} entries, "
          f"{len(seeds)} replicate seed(s) per entry")
    return 0


def _cmd_diff(args) -> int:
    from repro.analysis import diff_sources

    if args.against and args.b:
        print("error: give either RUN-B or --against, not both",
              file=sys.stderr)
        return 2
    if args.against:
        before, after = args.against, args.a
    elif args.b:
        before, after = args.a, args.b
    else:
        print("error: nothing to diff against "
              "(give RUN-B or --against PATH)", file=sys.stderr)
        return 2
    try:
        report = diff_sources(before, after)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown() + "\n")
    return report.exit_code


def _cmd_bench(args) -> int:
    import json

    from repro.analysis.bench import run_bench
    from repro.analysis.history import HistoryStore, append_trajectory
    from repro.runtime.settings import resolve_history_file

    if args.reps is not None and args.reps < 1:
        print(f"error: --reps must be >= 1 (got {args.reps})",
              file=sys.stderr)
        return 2
    profile = "quick" if args.quick else "full"
    point = run_bench(profile=profile, reps=args.reps, stream=sys.stderr)
    if args.json:
        print(json.dumps(point, indent=2, sort_keys=True))
    if args.no_append:
        return 0
    path = resolve_history_file(args.history_file)
    append_trajectory(path, point)
    print(f"history: appended {profile} point "
          f"{point['git_sha'][:7] if point['git_sha'] else '???????'}"
          f"{'*' if point['git_dirty'] else ''} to {path}")
    if args.store_dir:
        stored = HistoryStore(args.store_dir).add(point)
        print(f"history: stored {stored}")
    return 0


def _cmd_history(args) -> int:
    from repro.analysis.history import (
        history_markdown,
        load_points,
        render_history,
    )
    from repro.runtime.settings import resolve_history_file

    path = resolve_history_file(args.history_file)
    try:
        points = load_points(path)
    except (OSError, ValueError) as error:
        print(f"error: cannot read history {path}: {error}",
              file=sys.stderr)
        return 2
    print(render_history(points, args.metric, entry=args.entry,
                         last=args.last))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(
                history_markdown(points, args.metric, entry=args.entry)
                + "\n")
        print(f"\nmarkdown report: {args.markdown}")
    return 0


def _cmd_check(args) -> int:
    import json

    from repro.analysis.degradation import check_history
    from repro.analysis.history import load_points
    from repro.runtime.settings import resolve_history_file

    path = resolve_history_file(args.history_file)
    try:
        points = load_points(path)
    except (OSError, ValueError) as error:
        print(f"error: cannot read history {path}: {error}",
              file=sys.stderr)
        return 2
    report = check_history(points, window=args.window)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown())
    return report.exit_code


def _cmd_bisect(args) -> int:
    import shlex
    import subprocess

    from repro.analysis.degradation import (
        bisect_commits,
        classify_threshold,
        git_commits,
        measure_command,
    )

    try:
        commits = git_commits(args.repo, args.good, args.bad)
    except subprocess.CalledProcessError as error:
        message = (error.stderr or "").strip() or error
        print(f"error: git rev-list failed: {message}", file=sys.stderr)
        return 2
    if not commits:
        print(f"error: no commits in {args.good}..{args.bad}",
              file=sys.stderr)
        return 2
    if args.measure_cmd:
        command = shlex.split(args.measure_cmd)
    else:
        # Replay the quick bench matrix at each probed commit.  Only
        # works across commits that already carry the bench harness.
        command = [
            sys.executable, "-c",
            "import sys; sys.path.insert(0, 'src');"
            "from repro.analysis.bench import run_bench;"
            "from repro.analysis.history import entry_metric;"
            f"print(entry_metric(run_bench('quick'), {args.metric!r}))",
        ]
    classify = classify_threshold(args.threshold, args.direction)
    measure = measure_command(args.repo, command)

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    print(f"bisect: {len(commits)} commit(s) in "
          f"{args.good[:10]}..{args.bad}, threshold {args.threshold} "
          f"({args.direction} is good)")
    try:
        verdict = bisect_commits(commits, measure, classify, log=log)
    except (subprocess.CalledProcessError, RuntimeError,
            ValueError) as error:
        print(f"error: measurement failed: {error}", file=sys.stderr)
        return 2
    if verdict is None:
        print("bisect: every probed commit is good — the regression is "
              "not in this range")
        return 1
    print(f"bisect: first bad commit {verdict['first_bad']} "
          f"(#{verdict['index'] + 1} of {len(commits)}, "
          f"measured {verdict['value']:.4f}, "
          f"{len(verdict['measurements'])} probe(s))")
    return 0


def _apply_runtime(args) -> None:
    """Install ``--jobs`` / ``--no-cache`` as process-wide defaults.

    Experiment code calls ``run_matrix`` deep below the subcommand, so
    the flags travel via :func:`repro.runtime.configure` rather than
    through every signature.  Both keys are always (re)set, so repeated
    in-process invocations don't leak settings into each other.
    """
    from repro.runtime import configure

    configure(
        jobs=getattr(args, "jobs", None),
        cache=False if getattr(args, "no_cache", False) else None,
        telemetry_dir=getattr(args, "telemetry_dir", None),
        serve=getattr(args, "serve", None),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 failure (regressions, quarantine-worthy
    job failures), 2 usage error, 3 partial success (``sweep
    --keep-going`` with quarantined cells), 130 interrupted
    (SIGINT/SIGTERM; ``sweep --resume`` picks the run back up).
    """
    from repro.runtime import JobFailedError

    args = _build_parser().parse_args(argv)
    _apply_runtime(args)
    handlers = {
        "list": _cmd_list,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "utilization": _cmd_utilization,
        "experiment": _cmd_experiment,
        "energy": _cmd_energy,
        "sweep": _cmd_sweep,
        "top": _cmd_top,
        "service": _cmd_service,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "fetch": _cmd_fetch,
        "chaos": _cmd_chaos,
        "spans": _cmd_spans,
        "cache": _cmd_cache,
        "profile": _cmd_profile,
        "timeline": _cmd_timeline,
        "analyze": _cmd_analyze,
        "baseline": _cmd_baseline,
        "diff": _cmd_diff,
        "bench": _cmd_bench,
        "history": _cmd_history,
        "check": _cmd_check,
        "bisect": _cmd_bisect,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        return 0
    except KeyboardInterrupt as stop:
        # Including RunInterrupted: the engine already flushed telemetry
        # and wrote a `status: interrupted` manifest before raising.
        print(f"\n{stop or 'interrupted'}", file=sys.stderr)
        return 130
    except JobFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
