"""Wall-clock benchmark harness behind ``repro bench``.

Measures how fast the *simulator itself* runs — kilocycles of
simulated time per wall-clock second — over a pinned benchmark ×
strategy matrix, and packages the measurement as one perf-history
point (:mod:`repro.analysis.history`).

Design constraints that shape the harness:

* Cells are simulated **directly** via
  :func:`~repro.core.simulator.simulate`, never through the
  :class:`~repro.runtime.ExperimentEngine` — the engine's result cache
  would happily satisfy a cell from disk in zero wall-clock, which is
  exactly the thing this harness must not do.
* Each repetition attaches a fresh
  :class:`~repro.obs.profiler.PhaseProfiler` with ``sample_cycles=0``
  (totals only): the per-sample bookkeeping of flame-chart mode would
  tax the very loop being timed.
* The matrix, budgets, and seed are pinned so every point in the
  history measures the same work.  Two budget profiles exist: ``full``
  (the committed trajectory, ~15 s) and ``quick`` (CI smoke, ~3 s).
  Points record their profile and are only ever gated against points
  of the same profile.
* Simulated metrics ride along for free: the measured runs are
  ordinary deterministic simulations, so the same
  :func:`~repro.analysis.baseline.metrics_from_result` gated set is
  recorded with baseline-style noise floors.  Wall metrics instead get
  the repetition min-to-median spread, floored at a deliberately
  generous relative band (host jitter dwarfs workload sensitivity).
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, Optional, Sequence, TextIO

from repro.analysis.baseline import (
    entry_key,
    metrics_from_result,
    noise_band,
)
from repro.analysis.history import (
    WALL_RELATIVE_BAND_FLOOR,
    make_point,
)
from repro.assign.base import StrategySpec
from repro.core.simulator import simulate
from repro.obs.manifest import new_run_id
from repro.obs.profiler import PhaseProfiler

#: The pinned matrix: the paper's baseline and its headline mechanism
#: on one integer and one layout-sensitive workload.
BENCH_BENCHMARKS = ("gzip", "twolf")
BENCH_STRATEGIES: Dict[str, StrategySpec] = {
    "base": StrategySpec(kind="base"),
    "fdrt": StrategySpec(kind="fdrt"),
}

#: Budget profiles: (instructions, warmup, repetitions).
BENCH_PROFILES: Dict[str, Dict[str, int]] = {
    "full": {"instructions": 8_000, "warmup": 4_000, "reps": 3},
    "quick": {"instructions": 2_500, "warmup": 1_200, "reps": 2},
}


def bench_config(profile: str = "full",
                 reps: Optional[int] = None) -> dict:
    """The pinned run configuration for one budget profile."""
    try:
        budget = dict(BENCH_PROFILES[profile])
    except KeyError:
        raise ValueError(
            f"unknown bench profile {profile!r} "
            f"(choices: {', '.join(sorted(BENCH_PROFILES))})"
        ) from None
    if reps is not None:
        if reps < 1:
            raise ValueError(f"reps must be >= 1, got {reps}")
        budget["reps"] = int(reps)
    return {
        "benchmarks": list(BENCH_BENCHMARKS),
        "strategies": sorted(BENCH_STRATEGIES),
        **budget,
    }


def _measure_cell(benchmark: str, spec: StrategySpec,
                  instructions: int, warmup: int, reps: int) -> dict:
    """One cell: ``reps`` profiled runs → ``{metric: {value, band}}``.

    Simulated metrics are identical across repetitions (same seed,
    deterministic simulator), so their value comes from the first run
    with baseline noise floors.  Wall metrics take the median across
    repetitions with the observed spread as the band.
    """
    wall_samples: Dict[str, list] = {}
    result = None
    for _ in range(reps):
        profiler = PhaseProfiler(sample_cycles=0)
        result = simulate(
            benchmark, spec,
            instructions=instructions, warmup=warmup,
            profiler=profiler,
        )
        for name, value in profiler.wall_metrics().items():
            wall_samples.setdefault(name, []).append(value)

    metrics = {
        name: {"value": value, "band": noise_band(value, ())}
        for name, value in metrics_from_result(result).items()
    }
    for name, samples in wall_samples.items():
        value = statistics.median(samples)
        spread = max(abs(sample - value) for sample in samples)
        band = max(spread, WALL_RELATIVE_BAND_FLOOR * abs(value))
        metrics[name] = {"value": value, "band": band}
    return metrics


def run_bench(
    profile: str = "full",
    reps: Optional[int] = None,
    run_id: Optional[str] = None,
    stream: Optional[TextIO] = None,
    benchmarks: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> dict:
    """Measure the pinned matrix; returns one validated history point.

    ``benchmarks``/``instructions``/``warmup`` overrides exist for
    tests that need a tiny budget — production callers (the CLI, CI)
    pin everything through ``profile``.
    """
    config = bench_config(profile, reps)
    if benchmarks is not None:
        config["benchmarks"] = list(benchmarks)
    if instructions is not None:
        config["instructions"] = int(instructions)
    if warmup is not None:
        config["warmup"] = int(warmup)

    run_id = run_id or new_run_id()
    entries: Dict[str, Dict[str, dict]] = {}
    started = time.monotonic()
    for benchmark in config["benchmarks"]:
        for name in config["strategies"]:
            spec = BENCH_STRATEGIES[name]
            if stream is not None:
                print(f"bench {benchmark}/{spec.label}: "
                      f"{config['reps']} rep(s) x "
                      f"{config['instructions']} instructions ...",
                      file=stream, flush=True)
            cell = _measure_cell(
                benchmark, spec,
                instructions=config["instructions"],
                warmup=config["warmup"],
                reps=config["reps"],
            )
            entries[entry_key(benchmark, spec.label)] = cell
            if stream is not None:
                wall = cell.get("wall.kcyc_per_s", {})
                print(f"  {wall.get('value', 0.0):.1f} kcyc/s "
                      f"(± {wall.get('band', 0.0):.1f}), "
                      f"ipc {cell.get('ipc', {}).get('value', 0.0):.3f}",
                      file=stream, flush=True)
    if stream is not None:
        print(f"bench done in {time.monotonic() - started:.1f}s",
              file=stream, flush=True)
    return make_point(entries, run_id=run_id, profile=profile,
                      config=config)
