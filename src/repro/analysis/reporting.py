"""``repro analyze``: post-hoc performance reports from run telemetry.

Consumes a schema-v2 run manifest (whose job records embed full
``SimResult`` payloads) and produces:

* per-(benchmark × strategy) top-down IPC-loss attribution tables
  (:class:`~repro.analysis.attribution.Attribution`);
* an assignment-quality summary for trace-based strategies — how well
  the cluster assignment localised critical operand forwarding, the
  FDRT option mix, and migration behaviour;
* the engine/cache summary of the run.

Everything renders twice: a terminal dashboard (:meth:`render`) and a
markdown report (:meth:`to_markdown`) for CI artifacts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.attribution import Attribution


@dataclasses.dataclass(frozen=True)
class AssignmentQuality:
    """Cluster-assignment quality of one run.

    ``avoidable_inter_fraction`` is the share of critical register
    forwards a better assignment could still localise — the headroom
    the paper's FDRT strategy chases.
    """

    benchmark: str
    strategy: str
    pct_intra_cluster_forwarding: float
    avg_forward_distance: float
    chain_migration_rate: float
    fill_migration_rate: float
    option_counts: Dict[str, int]

    @property
    def avoidable_inter_fraction(self) -> float:
        return max(0.0, 1.0 - self.pct_intra_cluster_forwarding)

    def option_mix(self) -> Dict[str, float]:
        """FDRT assignment-option usage fractions (empty for non-FDRT)."""
        total = sum(self.option_counts.values())
        if not total:
            return {}
        return {name: count / total
                for name, count in sorted(self.option_counts.items())}

    def summary_line(self) -> str:
        parts = [
            f"intra-cluster fwd {self.pct_intra_cluster_forwarding:.1%}",
            f"avoidable inter {self.avoidable_inter_fraction:.1%}",
            f"mean distance {self.avg_forward_distance:.2f}",
            f"chain migration {self.chain_migration_rate:.1%}",
        ]
        mix = self.option_mix()
        if mix:
            parts.append("options " + " ".join(
                f"{name}={fraction:.0%}" for name, fraction in mix.items()))
        return ", ".join(parts)

    @classmethod
    def from_result(cls, result: dict) -> "AssignmentQuality":
        return cls(
            benchmark=str(result["benchmark"]),
            strategy=str(result["strategy"]),
            pct_intra_cluster_forwarding=float(
                result["pct_intra_cluster_forwarding"]),
            avg_forward_distance=float(result["avg_forward_distance"]),
            chain_migration_rate=float(result["chain_migration_rate"]),
            fill_migration_rate=float(result["fill_migration_rate"]),
            option_counts={str(k): int(v)
                           for k, v in result["option_counts"].items()},
        )


@dataclasses.dataclass
class AnalysisReport:
    """Everything ``repro analyze`` derives from one run manifest."""

    attributions: List[Attribution]
    quality: List[AssignmentQuality]
    engine: Optional[dict] = None

    def render(self) -> str:
        """Terminal dashboard: attribution tables + quality summary."""
        if not self.attributions:
            return ("no job results in this manifest "
                    "(schema v2 with per-job results required)")
        blocks = ["top-down IPC-loss attribution", ""]
        for attribution in self.attributions:
            blocks.append(attribution.render())
            blocks.append("")
        blocks.append("assignment quality (critical-operand locality)")
        for quality in self.quality:
            blocks.append(
                f"  {quality.benchmark} × {quality.strategy}: "
                f"{quality.summary_line()}"
            )
        if self.engine:
            blocks.append("")
            blocks.append(
                f"engine: {self.engine.get('total', 0)} jobs, "
                f"{self.engine.get('cache_hits', 0)} cache hits, "
                f"{self.engine.get('executed', 0)} executed "
                f"({self.engine.get('mode', '?')}, "
                f"{self.engine.get('elapsed', 0.0):.2f}s)"
            )
        return "\n".join(blocks)

    def to_dict(self) -> dict:
        """Machine-readable report (``repro analyze --json``)."""
        return {
            "engine": self.engine,
            "attributions": [
                {
                    "benchmark": a.benchmark,
                    "strategy": a.strategy,
                    "ipc": a.ipc,
                    "ipc_gap": a.ipc_gap,
                    "loss_by_category": a.loss_by_category(),
                    "loss_by_cluster": a.loss_by_cluster(),
                }
                for a in self.attributions
            ],
            "quality": [
                {
                    "benchmark": q.benchmark,
                    "strategy": q.strategy,
                    "pct_intra_cluster_forwarding":
                        q.pct_intra_cluster_forwarding,
                    "avoidable_inter_fraction": q.avoidable_inter_fraction,
                    "avg_forward_distance": q.avg_forward_distance,
                    "chain_migration_rate": q.chain_migration_rate,
                    "fill_migration_rate": q.fill_migration_rate,
                    "option_mix": q.option_mix(),
                }
                for q in self.quality
            ],
        }

    def to_markdown(self) -> str:
        """Markdown report (the CI artifact)."""
        lines = ["# Performance analysis", ""]
        if not self.attributions:
            lines.append("_No job results in this manifest._")
            return "\n".join(lines)
        lines.append("## Top-down IPC-loss attribution")
        lines.append("")
        for attribution in self.attributions:
            lines.append(attribution.to_markdown())
            lines.append("")
        lines.append("## Assignment quality")
        lines.append("")
        lines.append("| run | intra-cluster fwd | avoidable inter "
                     "| mean distance | chain migration | option mix |")
        lines.append("| --- | ---: | ---: | ---: | ---: | --- |")
        for quality in self.quality:
            mix = " ".join(f"{name}={fraction:.0%}"
                           for name, fraction in quality.option_mix().items())
            lines.append(
                f"| {quality.benchmark} × {quality.strategy} "
                f"| {quality.pct_intra_cluster_forwarding:.1%} "
                f"| {quality.avoidable_inter_fraction:.1%} "
                f"| {quality.avg_forward_distance:.2f} "
                f"| {quality.chain_migration_rate:.1%} "
                f"| {mix or '—'} |"
            )
        return "\n".join(lines)


def analyze_manifest(manifest: dict) -> AnalysisReport:
    """Build an :class:`AnalysisReport` from a loaded run manifest.

    Seeded replicate jobs (``seed`` set) are skipped — they exist for
    baseline noise bands and would duplicate every table row.
    """
    attributions: List[Attribution] = []
    quality: List[AssignmentQuality] = []
    for record in manifest.get("jobs", ()):
        result = record.get("result")
        if result is None or record.get("seed") is not None:
            continue
        attributions.append(Attribution.from_result(result))
        quality.append(AssignmentQuality.from_result(result))
    return AnalysisReport(
        attributions=attributions,
        quality=quality,
        engine=manifest.get("engine"),
    )
