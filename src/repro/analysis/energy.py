"""Activity-based energy accounting (extension).

The clustered-architecture literature the paper builds on (Zyuban &
Kogge; Palacharla et al.) motivates clustering with power as much as with
cycle time.  This module adds the natural companion metric: an
activity-based energy estimate whose inputs are the event counts the
simulator already tracks.  Costs are *relative units* per event, not
joules — the point is comparing assignment strategies (FDRT's shorter
forwarding distances translate directly into fewer interconnect-hop
events), not absolute power numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.pipeline import Pipeline


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Relative energy cost per micro-event.

    Defaults follow the usual qualitative ordering: an inter-cluster hop
    costs several times an intra-cluster bypass; cache accesses dominate
    simple ALU operations; lower levels cost more than upper ones.
    """

    alu_op: float = 1.0
    fp_op: float = 2.0
    complex_op: float = 4.0
    rs_write: float = 0.5
    bypass: float = 0.3          # intra-cluster forward (one operand)
    hop: float = 2.0             # per inter-cluster hop per operand
    rf_read: float = 0.8
    predictor_lookup: float = 0.4
    tc_fetch: float = 3.0        # per trace cache line fetch
    icache_fetch: float = 2.0
    l1d_access: float = 4.0
    l2_access: float = 12.0
    memory_access: float = 40.0


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Energy totals (relative units) broken down by component."""

    components: Dict[str, float]
    retired: int

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def energy_per_instruction(self) -> float:
        """Mean relative energy per retired instruction."""
        return self.total / self.retired if self.retired else 0.0

    @property
    def interconnect(self) -> float:
        """The inter-cluster transport component (FDRT's target)."""
        return self.components.get("interconnect", 0.0)

    def render(self) -> str:
        lines = [f"Energy estimate over {self.retired} instructions "
                 f"({self.energy_per_instruction:.2f} units/instr):"]
        for name, value in sorted(self.components.items(),
                                  key=lambda kv: -kv[1]):
            share = value / self.total if self.total else 0.0
            lines.append(f"  {name:<14} {value:>12.0f}  ({share:.1%})")
        return "\n".join(lines)


def estimate_energy(pipeline: Pipeline,
                    model: EnergyModel = EnergyModel()) -> EnergyReport:
    """Estimate energy from a pipeline's activity counters."""
    stats = pipeline.stats
    execution = 0.0
    for cluster in pipeline.clusters:
        for unit in cluster.units:
            if unit.name in ("alu0", "alu1", "mem", "br"):
                cost = model.alu_op
            elif unit.name in ("fp", "fpmem"):
                cost = model.fp_op
            else:
                cost = model.complex_op
            execution += unit.dispatched * cost
    intra = stats.forwarded_operands - 0  # all operands pay a bypass
    interconnect = stats.forwarded_hops * model.hop
    bypass = intra * model.bypass
    # RF reads: operands not supplied by forwarding.
    rf_reads = max(
        0, 2 * stats.retired - stats.forwarded_operands
    ) * model.rf_read * 0.5
    frontend = (
        pipeline.fetch_engine.predictor.lookups * model.predictor_lookup
        + stats.tc_fetches * model.tc_fetch
        + pipeline.fetch_engine.icache.accesses * model.icache_fetch
    )
    memory = (
        pipeline.memory.l1d.accesses * model.l1d_access
        + pipeline.memory.l2.accesses * model.l2_access
        + pipeline.memory.memory.accesses * model.memory_access
    )
    issue = stats.retired * model.rs_write
    return EnergyReport(
        components={
            "execution": execution,
            "interconnect": interconnect,
            "bypass": bypass,
            "regfile": rf_reads,
            "frontend": frontend,
            "memory": memory,
            "issue": issue,
        },
        retired=stats.retired,
    )
