"""Statistical degradation detection over the perf history.

``repro check`` gates the **newest** history point against the
trailing window of comparable points:

* references share the candidate's budget *profile* (``quick`` points
  never judge ``full`` points — the budgets produce different IPC and
  throughput);
* wall-clock metrics additionally require the candidate's host
  *fingerprint* — kcyc/s on another machine says nothing about this
  one, so cross-host wall comparisons are reported as ``skipped``
  rather than silently gated;
* reference points whose value sits far outside the window consensus
  (beyond ``OUTLIER_BANDS`` combined bands of the window median) are
  dropped before gating, so one loaded-CI-host measurement cannot
  poison the window.

A metric regresses when the candidate leaves ``reference ± band`` in
its unfavourable direction, where the band is the widest of: the
candidate's own noise band, the reference points' recorded bands, and
the reference window's observed spread.  Exit codes mirror ``repro
diff``: 0 clean, 1 regression, 2 not enough history to check.

The second half of the module is the machinery behind ``repro
bisect``: a deterministic binary search over ``git rev-list`` output,
measuring each probed commit in a detached worktree, to find the first
commit where a metric crossed a threshold.
"""

from __future__ import annotations

import os
import statistics
import subprocess
import tempfile
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.history import (
    is_wall_metric,
    metric_direction,
    point_label,
)

#: Default trailing-window size (comparable points consulted).
DEFAULT_WINDOW = 5

#: Reference points beyond this many combined bands of the window
#: median are discarded as outliers before gating.
OUTLIER_BANDS = 3.0

_STATUS_ORDER = ("regression", "improved", "ok", "info", "skipped")


class CheckEntry:
    """One (entry, metric) verdict of a degradation check."""

    def __init__(self, entry: str, metric: str, status: str,
                 candidate: float, reference: Optional[float] = None,
                 band: float = 0.0, references: int = 0,
                 note: str = "") -> None:
        self.entry = entry
        self.metric = metric
        self.status = status  # regression | improved | ok | info | skipped
        self.candidate = candidate
        self.reference = reference
        self.band = band
        self.references = references
        self.note = note

    @property
    def delta(self) -> Optional[float]:
        if self.reference is None:
            return None
        return self.candidate - self.reference

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "metric": self.metric,
            "status": self.status,
            "candidate": self.candidate,
            "reference": self.reference,
            "delta": self.delta,
            "band": self.band,
            "references": self.references,
            "note": self.note,
        }


class CheckReport:
    """The full verdict of gating one point against its history."""

    def __init__(self, candidate: Optional[dict],
                 entries: List[CheckEntry],
                 window: int, notes: Optional[List[str]] = None) -> None:
        self.candidate = candidate
        self.entries = entries
        self.window = window
        self.notes = list(notes or [])

    @property
    def regressions(self) -> List[CheckEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def exit_code(self) -> int:
        """0 clean, 1 regression, 2 not enough history."""
        if self.candidate is None:
            return 2
        if self.regressions:
            return 1
        if not any(e.status in ("ok", "improved", "regression")
                   for e in self.entries):
            return 2
        return 0

    def to_dict(self) -> dict:
        return {
            "candidate": (point_label(self.candidate)
                          if self.candidate else None),
            "candidate_sha": (self.candidate or {}).get("git_sha"),
            "candidate_run_id": (self.candidate or {}).get("run_id"),
            "profile": (self.candidate or {}).get("profile"),
            "window": self.window,
            "exit_code": self.exit_code,
            "regressions": len(self.regressions),
            "notes": self.notes,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def _sorted(self) -> List[CheckEntry]:
        order = {status: i for i, status in enumerate(_STATUS_ORDER)}
        return sorted(
            self.entries,
            key=lambda e: (order.get(e.status, 99), e.entry, e.metric))

    def render(self) -> str:
        if self.candidate is None:
            return "check: no history points to check"
        lines = [
            f"check: {point_label(self.candidate)} "
            f"({self.candidate.get('profile', '?')}) vs last "
            f"{self.window} comparable point(s)"
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        lines.append(
            f"  {'entry':<24} {'metric':<28} {'candidate':>11} "
            f"{'reference':>11} {'band':>9}  status")
        for entry in self._sorted():
            if entry.status == "skipped" and not entry.note:
                continue
            reference = (f"{entry.reference:>11.4f}"
                         if entry.reference is not None else f"{'-':>11}")
            tag = entry.status.upper() if entry.status in (
                "regression", "improved") else entry.status
            note = f"  ({entry.note})" if entry.note else ""
            lines.append(
                f"  {entry.entry:<24} {entry.metric:<28} "
                f"{entry.candidate:>11.4f} {reference} "
                f"{entry.band:>9.4f}  {tag}{note}")
        verdict = ("REGRESSION" if self.regressions else
                   "ok" if self.exit_code == 0 else "insufficient history")
        lines.append(
            f"verdict: {verdict} "
            f"({len(self.regressions)} regressing metric(s))")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        if self.candidate is None:
            return "## Degradation check\n\nNo history points to check.\n"
        lines = [
            "## Degradation check",
            "",
            f"Candidate `{point_label(self.candidate)}` "
            f"(profile `{self.candidate.get('profile', '?')}`) vs the "
            f"last {self.window} comparable point(s): "
            + ("**REGRESSION**" if self.regressions
               else "ok" if self.exit_code == 0 else "insufficient history"),
            "",
        ]
        lines.extend(f"> {note}" for note in self.notes)
        rows = [e for e in self._sorted()
                if e.status in ("regression", "improved")]
        if rows:
            lines += [
                "",
                "| entry | metric | candidate | reference | band | status |",
                "| --- | --- | ---: | ---: | ---: | --- |",
            ]
            for e in rows:
                reference = (f"{e.reference:.4f}"
                             if e.reference is not None else "-")
                lines.append(
                    f"| {e.entry} | `{e.metric}` | {e.candidate:.4f} "
                    f"| {reference} | {e.band:.4f} | {e.status} |")
        return "\n".join(lines) + "\n"


def _reference_values(
    references: Sequence[dict], entry: str, metric: str,
) -> List[Tuple[float, float]]:
    """``(value, band)`` of ``metric`` in each reference that has it."""
    pairs = []
    for point in references:
        cell = point.get("entries", {}).get(entry, {}).get(metric)
        if cell is not None:
            pairs.append((float(cell["value"]), float(cell["band"])))
    return pairs


def _drop_outliers(pairs: List[Tuple[float, float]],
                   ) -> List[Tuple[float, float]]:
    """Discard references far outside the window consensus."""
    if len(pairs) < 3:
        return pairs
    center = statistics.median(value for value, _ in pairs)
    scale = max(max(band for _, band in pairs), 1e-12)
    kept = [(value, band) for value, band in pairs
            if abs(value - center) <= OUTLIER_BANDS * scale]
    return kept or pairs


def check_history(points: Sequence[dict],
                  window: int = DEFAULT_WINDOW) -> CheckReport:
    """Gate the newest point against its trailing comparable window."""
    points = sorted(points, key=lambda p: p.get("ts", 0.0))
    if not points:
        return CheckReport(None, [], window)
    candidate = points[-1]
    profile = candidate.get("profile")
    fingerprint = candidate.get("fingerprint")
    comparable = [p for p in points[:-1] if p.get("profile") == profile]
    references = comparable[-window:] if window else comparable

    notes: List[str] = []
    if not references:
        notes.append(
            f"no earlier {profile!r}-profile points — nothing to gate "
            "against yet")
    same_host = [p for p in references
                 if p.get("fingerprint") == fingerprint]
    cross_host = len(references) - len(same_host)
    if references and not same_host:
        notes.append(
            "no reference shares this host fingerprint — wall-clock "
            "metrics skipped")
    elif cross_host:
        notes.append(
            f"{cross_host} reference point(s) from other hosts ignored "
            "for wall-clock metrics")

    entries: List[CheckEntry] = []
    for entry_name, metrics in sorted(candidate.get("entries", {}).items()):
        for metric, cell in sorted(metrics.items()):
            value = float(cell["value"])
            own_band = float(cell["band"])
            direction = metric_direction(metric)
            pool = same_host if is_wall_metric(metric) else references
            pairs = _drop_outliers(
                _reference_values(pool, entry_name, metric))
            if not pairs:
                entries.append(CheckEntry(
                    entry_name, metric, "skipped", value,
                    note=("no same-host reference"
                          if is_wall_metric(metric) and references
                          else "")))
                continue
            reference = statistics.median(v for v, _ in pairs)
            spread = max(abs(v - reference) for v, _ in pairs)
            band = max(own_band, max(b for _, b in pairs), spread)
            if direction == "info":
                entries.append(CheckEntry(
                    entry_name, metric, "info", value, reference,
                    band, len(pairs)))
                continue
            delta = value - reference
            worse = -delta if direction == "higher" else delta
            if worse > band:
                status = "regression"
            elif -worse > band:
                status = "improved"
            else:
                status = "ok"
            entries.append(CheckEntry(
                entry_name, metric, status, value, reference, band,
                len(pairs)))
    return CheckReport(candidate, entries, window, notes)


# ----------------------------------------------------------------------
# Bisection: find the first commit that crossed a threshold.
# ----------------------------------------------------------------------
def git_commits(repo: str, good: str, bad: str) -> List[str]:
    """First-parent commits ``good..bad``, oldest first (``bad`` last)."""
    output = subprocess.run(
        ["git", "rev-list", "--reverse", "--first-parent",
         f"{good}..{bad}"],
        cwd=repo, capture_output=True, text=True, check=True,
    ).stdout
    return [line.strip() for line in output.splitlines() if line.strip()]


def classify_threshold(threshold: float,
                       direction: str = "higher",
                       ) -> Callable[[float], bool]:
    """A ``value -> is_bad`` classifier around a fixed threshold.

    ``direction`` names which way is *better* (as in
    :func:`~repro.analysis.history.metric_direction`); a value on the
    unfavourable side of ``threshold`` is bad.
    """
    if direction not in ("higher", "lower"):
        raise ValueError(
            f"direction must be 'higher' or 'lower', got {direction!r}")
    if direction == "higher":
        return lambda value: value < threshold
    return lambda value: value > threshold


def bisect_commits(
    commits: Sequence[str],
    measure: Callable[[str], float],
    classify: Callable[[float], bool],
    log: Optional[Callable[[str], None]] = None,
) -> Optional[dict]:
    """Binary-search ``commits`` (oldest first) for the first bad one.

    Assumes the classic bisect invariant: everything before the first
    bad commit is good, everything after is bad.  ``measure`` is called
    O(log n) times; returns ``{"first_bad", "index", "value",
    "measurements": {sha: value}}`` or ``None`` when every probed
    commit is good.
    """
    measurements: Dict[str, float] = {}
    lo, hi = 0, len(commits) - 1
    first_bad: Optional[int] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        sha = commits[mid]
        value = measure(sha)
        measurements[sha] = value
        bad = classify(value)
        if log is not None:
            log(f"bisect: {sha[:10]} -> {value:.4f} "
                f"({'bad' if bad else 'good'}) "
                f"[{len(measurements)} probe(s)]")
        if bad:
            first_bad = mid
            hi = mid - 1
        else:
            lo = mid + 1
    if first_bad is None:
        return None
    return {
        "first_bad": commits[first_bad],
        "index": first_bad,
        "value": measurements[commits[first_bad]],
        "measurements": measurements,
    }


def measure_command(repo: str, command: Sequence[str]) -> Callable[[str], float]:
    """A ``measure`` callback running ``command`` per probed commit.

    Each probe checks the commit out into a throwaway detached ``git
    worktree`` (the live checkout is never touched), runs ``command``
    with that worktree as both CWD and ``REPRO_BISECT_TREE``, and
    parses the **last line of stdout** as the metric value.
    """
    def measure(sha: str) -> float:
        with tempfile.TemporaryDirectory(prefix="repro-bisect-") as scratch:
            tree = os.path.join(scratch, "tree")
            subprocess.run(
                ["git", "worktree", "add", "--detach", tree, sha],
                cwd=repo, capture_output=True, text=True, check=True)
            try:
                env = dict(os.environ, REPRO_BISECT_TREE=tree)
                proc = subprocess.run(
                    list(command), cwd=tree, env=env,
                    capture_output=True, text=True, check=True)
                lines = [line for line in proc.stdout.splitlines()
                         if line.strip()]
                if not lines:
                    raise RuntimeError(
                        f"bisect command produced no output at {sha[:10]}")
                return float(lines[-1])
            finally:
                subprocess.run(
                    ["git", "worktree", "remove", "--force", tree],
                    cwd=repo, capture_output=True, text=True, check=False)
    return measure
