"""Offline program-phase detection over interval time series.

Consumes the windows an :class:`~repro.obs.timeseries.IntervalRecorder`
produced (in memory or from its JSONL export) and answers the questions
whole-run aggregates cannot: *when* does the workload change behaviour,
which blocker dominates each regime, and which assignment strategy wins
each regime — the direct input for the ROADMAP's online dynamic policy
selection item.

Two mechanisms, both deterministic:

**Change-point detection.**  Each window becomes a normalised feature
vector (IPC as a fraction of machine width, the per-category
cycle-accounting shares, trace-cache hit rate, RS occupancy fraction),
weighted by fixed per-feature gains.  A boundary is cut wherever the
RMS distance between the mean vectors of the ``smooth`` windows on
either side exceeds ``threshold`` and is a local maximum — classic
sliding-window change-point detection, no randomness, no iteration.

**Quantised phase signatures.**  Every segment gets a **phase id**:
``"p"`` plus one digit per feature, each digit the segment's mean
feature quantised with the *fixed* gains in :data:`SIGNATURE_GAINS`.
Because the gains are constants of this module (not derived from the
run), the same behaviour maps to the same id across seeds, strategies,
and runs — ids are comparable, so "phase ``p30000000031`` prefers
``fdrt``" is a meaningful cross-run statement.  Adjacent segments with
equal signatures merge.  The id is **not** guaranteed stable across
:data:`PHASE_SIGNATURE_VERSION` bumps — persist the version with any
stored id.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.accounting import CYCLE_LOSS_CATEGORIES

#: Bump on any change to features, gains, or quantisation: stored phase
#: ids are only comparable within one version.
PHASE_SIGNATURE_VERSION = 1

#: Feature order of the signature digits (and of every vector here).
PHASE_FEATURES: Tuple[str, ...] = (
    ("ipc_frac",) + CYCLE_LOSS_CATEGORIES
    + ("tc_hit_rate", "occupancy_frac"))

#: Fixed per-feature gains: run-independent constants, so quantised
#: signatures (and distances) are comparable across seeds and runs.
SIGNATURE_GAINS: Dict[str, float] = {
    "ipc_frac": 4.0,
    "tc_hit_rate": 3.0,
    "occupancy_frac": 3.0,
    **{category: 4.0 for category in CYCLE_LOSS_CATEGORIES},
}

#: Signature digits run 0..QUANT_LEVELS-1 per feature.
QUANT_LEVELS = 5

#: Default change-point distance threshold (RMS of gain-weighted
#: feature deltas; tuned on the phased workloads in the test suite).
DEFAULT_THRESHOLD = 0.25

#: Default windows averaged on each side of a candidate boundary.
DEFAULT_SMOOTH = 2


def window_features(window: dict) -> Dict[str, float]:
    """Raw (ungained) feature vector of one recorder window.

    All features are fractions in roughly ``[0, 1]``: IPC over machine
    width, lost-slot share per accounting category (slots over
    ``width * cycles``), trace-cache hit rate, RS occupancy fraction.
    """
    width = max(1, int(window.get("width") or 1))
    cycles = max(1, int(window.get("cycles") or 1))
    slots = width * cycles
    accounting = window.get("accounting") or {}
    features = {"ipc_frac": float(window.get("ipc", 0.0)) / width}
    for category in CYCLE_LOSS_CATEGORIES:
        features[category] = accounting.get(category, 0) / slots
    features["tc_hit_rate"] = float(window.get("tc_hit_rate", 0.0))
    features["occupancy_frac"] = float(window.get("occupancy_frac", 0.0))
    return features


def _vector(window: dict) -> List[float]:
    """Gain-weighted feature vector (the distance/signature space)."""
    features = window_features(window)
    return [features[name] * SIGNATURE_GAINS[name]
            for name in PHASE_FEATURES]


def _mean(vectors: Sequence[List[float]]) -> List[float]:
    count = len(vectors)
    return [sum(vector[i] for vector in vectors) / count
            for i in range(len(vectors[0]))]


def _distance(a: List[float], b: List[float]) -> float:
    """RMS distance between two gain-weighted vectors."""
    return math.sqrt(
        sum((x - y) ** 2 for x, y in zip(a, b)) / len(a))


def signature(mean_vector: Sequence[float]) -> str:
    """Quantised phase id of a gain-weighted mean feature vector."""
    digits = []
    for value in mean_vector:
        digits.append(str(min(QUANT_LEVELS - 1, max(0, int(value)))))
    return "p" + "".join(digits)


@dataclasses.dataclass
class Phase:
    """One contiguous run of behaviourally-similar windows."""

    phase_id: str
    first_window: int
    last_window: int  # inclusive
    start: int        # measured cycles
    end: int
    cycles: int
    retired: int
    ipc: float
    features: Dict[str, float]      # mean raw features
    accounting: Dict[str, int]      # summed lost slots per category
    dominant_blocker: str

    @property
    def windows(self) -> int:
        return self.last_window - self.first_window + 1

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def detect_phases(windows: Sequence[dict],
                  threshold: float = DEFAULT_THRESHOLD,
                  smooth: int = DEFAULT_SMOOTH) -> List[Phase]:
    """Segment a window sequence into phases.

    Boundaries are cut at local maxima of the sliding-window mean
    distance above ``threshold``; adjacent segments whose quantised
    signatures coincide are merged, so phase count reflects *distinct*
    behaviours, not boundary count.
    """
    if smooth < 1:
        raise ValueError(f"smooth must be >= 1, got {smooth}")
    windows = [w for w in windows if w.get("cycles")]
    if not windows:
        return []
    vectors = [_vector(window) for window in windows]
    count = len(vectors)
    # Distance score at each candidate boundary i (cut before window i).
    scores = [0.0] * (count + 1)
    for i in range(1, count):
        left = vectors[max(0, i - smooth):i]
        right = vectors[i:i + smooth]
        scores[i] = _distance(_mean(left), _mean(right))
    cuts = [0]
    for i in range(1, count):
        if scores[i] < threshold:
            continue
        if scores[i] >= scores[i - 1] and scores[i] >= scores[i + 1]:
            if i > cuts[-1]:
                cuts.append(i)
    cuts.append(count)
    # Build segments, merging adjacent equal-signature runs.
    segments: List[Tuple[int, int, str]] = []  # (first, last, phase_id)
    for first, bound in zip(cuts, cuts[1:]):
        last = bound - 1
        phase_id = signature(_mean(vectors[first:bound]))
        if segments and segments[-1][2] == phase_id:
            segments[-1] = (segments[-1][0], last, phase_id)
        else:
            segments.append((first, last, phase_id))
    phases = []
    for first, last, phase_id in segments:
        chunk = windows[first:last + 1]
        cycles = sum(w["cycles"] for w in chunk)
        retired = sum(w["retired"] for w in chunk)
        accounting = {category: 0 for category in CYCLE_LOSS_CATEGORIES}
        for window in chunk:
            for category, slots in (window.get("accounting") or {}).items():
                accounting[category] = accounting.get(category, 0) + slots
        dominant = max(accounting, key=lambda c: (accounting[c], c))
        raw = [window_features(w) for w in chunk]
        features = {name: sum(r[name] for r in raw) / len(raw)
                    for name in PHASE_FEATURES}
        # Re-derive the id from the merged span so it matches the
        # stored mean features.
        merged_id = signature(_mean(vectors[first:last + 1]))
        phases.append(Phase(
            phase_id=merged_id,
            first_window=first,
            last_window=last,
            start=chunk[0]["start"],
            end=chunk[-1]["end"],
            cycles=cycles,
            retired=retired,
            ipc=retired / cycles if cycles else 0.0,
            features=features,
            accounting=accounting,
            dominant_blocker=dominant,
        ))
    return phases


class PhaseReport:
    """Phases of one timeline plus rendering/export."""

    def __init__(self, phases: List[Phase], windows: int,
                 meta: Optional[dict] = None) -> None:
        self.phases = phases
        self.windows = windows
        self.meta = dict(meta or {})

    @property
    def distinct_ids(self) -> List[str]:
        seen: List[str] = []
        for phase in self.phases:
            if phase.phase_id not in seen:
                seen.append(phase.phase_id)
        return seen

    def to_dict(self) -> dict:
        return {
            "signature_version": PHASE_SIGNATURE_VERSION,
            "windows": self.windows,
            "distinct_phases": len(self.distinct_ids),
            "meta": self.meta,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def _rows(self) -> List[List[str]]:
        rows = []
        total = sum(phase.cycles for phase in self.phases) or 1
        for phase in self.phases:
            features = phase.features
            loss = phase.accounting.get(phase.dominant_blocker, 0)
            cycles = phase.cycles or 1
            rows.append([
                phase.phase_id,
                f"{phase.first_window}-{phase.last_window}",
                f"{phase.cycles}",
                f"{phase.cycles / total:.1%}",
                f"{phase.ipc:.3f}",
                f"{features['tc_hit_rate']:.2f}",
                f"{features['occupancy_frac']:.2f}",
                phase.dominant_blocker,
                f"{loss / cycles:.3f}",
            ])
        return rows

    _HEADER = ["phase", "windows", "cycles", "share", "ipc", "tc_hit",
               "rs_occ", "dominant blocker", "loss IPC"]

    def render(self) -> str:
        """Terminal per-phase attribution table."""
        if not self.phases:
            return "no phases detected (empty timeline)"
        rows = self._rows()
        widths = [max(len(self._HEADER[i]),
                      max(len(row[i]) for row in rows))
                  for i in range(len(self._HEADER))]
        lines = [
            f"{len(self.phases)} phase(s), "
            f"{len(self.distinct_ids)} distinct, "
            f"over {self.windows} window(s)",
            "  " + "  ".join(h.ljust(widths[i])
                             for i, h in enumerate(self._HEADER)),
        ]
        for row in rows:
            lines.append("  " + "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """The same table as GitHub-flavoured markdown."""
        lines = [
            "| " + " | ".join(self._HEADER) + " |",
            "|" + "|".join("---" for _ in self._HEADER) + "|",
        ]
        for row in self._rows():
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def segment_timeline(windows: Sequence[dict],
                     threshold: float = DEFAULT_THRESHOLD,
                     smooth: int = DEFAULT_SMOOTH,
                     meta: Optional[dict] = None) -> PhaseReport:
    """Detect phases and wrap them in a :class:`PhaseReport`."""
    phases = detect_phases(windows, threshold=threshold, smooth=smooth)
    return PhaseReport(phases, windows=len(list(windows)), meta=meta)


def load_timeline(path: str) -> Tuple[dict, List[dict]]:
    """Load ``(meta, windows)`` from a recorder export.

    Accepts both shapes ``repro timeline`` writes: the JSONL form
    (header line then one window per line) and the single-document
    ``--json`` form (``{"meta": ..., "windows": [...]}``).  Torn JSONL
    tail lines are skipped, matching every other reader in the repo.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict) and "windows" in document:
        return dict(document.get("meta") or {}), list(document["windows"])
    meta: dict = {}
    windows: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail
        if not isinstance(record, dict):
            continue
        if record.get("kind") == "interval-series" or (
                not windows and not meta and "cycles" not in record):
            meta = record
        else:
            windows.append(record)
    return meta, windows


#: Shade ramp for the lost-slot heatmap (blank = no loss).
_HEAT_SHADES = " ░▒▓█"

#: ANSI SGR per shade level, dim → alarming; index 0 unused (blank).
_HEAT_COLORS = ("", "\x1b[2m", "", "\x1b[33m", "\x1b[31m")
_ANSI_RESET = "\x1b[0m"
_ANSI_DIM = "\x1b[2m"
_ANSI_CYAN = "\x1b[36m"


def _pool(values: Sequence[float], columns: int) -> List[float]:
    """Mean-pool a series down to at most ``columns`` buckets."""
    count = len(values)
    if count <= columns:
        return list(values)
    pooled = []
    for i in range(columns):
        lo = i * count // columns
        hi = max(lo + 1, (i + 1) * count // columns)
        chunk = values[lo:hi]
        pooled.append(sum(chunk) / len(chunk))
    return pooled


def render_timeline(windows: Sequence[dict],
                    report: Optional[PhaseReport] = None,
                    ansi: bool = False,
                    columns: int = 64) -> str:
    """Sparkline / heatmap terminal view of an interval series.

    One sparkline row per headline signal, one lost-slot heatmap row
    per active cycle-accounting category (darker = larger share of
    that window's issue slots, normalised per row), and — when
    ``report`` is given — a phase strip labelling each column with its
    detected phase.  ``ansi`` only adds colour; the glyphs are plain
    unicode, so piped output stays readable.
    """
    from repro.analysis.history import sparkline

    windows = [w for w in windows if w.get("cycles")]
    if not windows:
        return "no windows recorded"

    def dim(text: str) -> str:
        return f"{_ANSI_DIM}{text}{_ANSI_RESET}" if ansi else text

    label_width = max(len(name) for name in
                      CYCLE_LOSS_CATEGORIES + ("occupancy",))
    lines: List[str] = []

    signals = (
        ("ipc", lambda w: float(w.get("ipc", 0.0))),
        ("tc_hit_rate", lambda w: float(w.get("tc_hit_rate", 0.0))),
        ("occupancy", lambda w: float(w.get("occupancy_frac", 0.0))),
    )
    for name, pick in signals:
        series = [pick(w) for w in windows]
        pooled = _pool(series, columns)
        spark = sparkline(pooled)
        stats = (f"min {min(series):.3f}  mean "
                 f"{sum(series) / len(series):.3f}  max {max(series):.3f}")
        lines.append(f"  {name:<{label_width}}  {spark}  {dim(stats)}")

    lines.append("")
    lines.append("  lost-slot heatmap (row-normalised share of issue "
                 "slots per window):")
    for category in CYCLE_LOSS_CATEGORIES:
        shares = []
        for window in windows:
            slots = (max(1, int(window.get("width") or 1))
                     * max(1, int(window["cycles"])))
            shares.append(
                (window.get("accounting") or {}).get(category, 0) / slots)
        peak = max(shares)
        if peak <= 0.0:
            continue
        cells = []
        for value in _pool(shares, columns):
            level = min(len(_HEAT_SHADES) - 1,
                        int(round(value / peak * (len(_HEAT_SHADES) - 1))))
            shade = _HEAT_SHADES[level]
            if ansi and level and _HEAT_COLORS[level]:
                shade = f"{_HEAT_COLORS[level]}{shade}{_ANSI_RESET}"
            cells.append(shade)
        lines.append(f"  {category:<{label_width}}  {''.join(cells)}  "
                     + dim(f"peak {peak:.3f}"))

    if report is not None and report.phases:
        letters = {}
        for phase_id in report.distinct_ids:
            letters[phase_id] = chr(ord("A") + len(letters) % 26)
        by_window = {}
        for phase in report.phases:
            for index in range(phase.first_window, phase.last_window + 1):
                by_window[index] = letters[phase.phase_id]
        count = len(windows)
        width = min(count, columns)
        strip = []
        previous = None
        for i in range(width):
            letter = by_window.get(i * count // width, "?")
            strip.append(letter if letter != previous else "·")
            previous = letter
        text = "".join(strip)
        if ansi:
            text = f"{_ANSI_CYAN}{text}{_ANSI_RESET}"
        lines.append("")
        lines.append(f"  {'phases':<{label_width}}  {text}")
        legend = "  ".join(f"{letter}={phase_id}" for phase_id, letter
                           in letters.items())
        lines.append(f"  {'':<{label_width}}  {dim(legend)}")
    return "\n".join(lines)


def compare_timelines(reports: Dict[str, PhaseReport]) -> List[dict]:
    """Cross-strategy winner table: best mean IPC per phase id.

    ``reports`` maps a label (strategy name, file stem) to its
    :class:`PhaseReport`; phases are matched by their seed-stable
    quantised ids, so rows only exist for behaviours at least one run
    exhibited.
    """
    ipc_by_id: Dict[str, Dict[str, List[Tuple[float, int]]]] = {}
    order: List[str] = []
    for label, report in reports.items():
        for phase in report.phases:
            if phase.phase_id not in order:
                order.append(phase.phase_id)
            ipc_by_id.setdefault(phase.phase_id, {}).setdefault(
                label, []).append((phase.ipc, phase.cycles))
    rows = []
    for phase_id in order:
        cells: Dict[str, float] = {}
        for label, samples in ipc_by_id[phase_id].items():
            cycles = sum(c for _, c in samples) or 1
            cells[label] = sum(ipc * c for ipc, c in samples) / cycles
        winner = max(cells, key=lambda label: (cells[label], label))
        rows.append({"phase": phase_id, "ipc": cells, "winner": winner})
    return rows


def render_comparison(rows: List[dict]) -> str:
    """Terminal table of :func:`compare_timelines` output."""
    if not rows:
        return "no phases to compare"
    labels: List[str] = []
    for row in rows:
        for label in row["ipc"]:
            if label not in labels:
                labels.append(label)
    header = ["phase"] + labels + ["winner"]
    table = []
    for row in rows:
        cells = [row["phase"]]
        for label in labels:
            ipc = row["ipc"].get(label)
            cells.append(f"{ipc:.3f}" if ipc is not None else "-")
        cells.append(row["winner"])
        table.append(cells)
    widths = [max(len(header[i]), max(len(r[i]) for r in table))
              for i in range(len(header))]
    lines = ["  " + "  ".join(h.ljust(widths[i])
                              for i, h in enumerate(header))]
    for cells in table:
        lines.append("  " + "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)))
    return "\n".join(lines)
