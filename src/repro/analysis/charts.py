"""Terminal bar charts for rendering the paper's figures as text.

Deliberately dependency-free: the benchmark harness runs in environments
without plotting libraries, and the paper's bar figures carry their
information fine as proportional text bars.
"""

from __future__ import annotations

from typing import Mapping, Optional


def bar_chart(
    data: Mapping[str, float],
    title: str = "",
    width: int = 50,
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Render labelled horizontal bars.

    ``baseline`` draws bars relative to a reference value (e.g. 1.0 for
    speedups), so that values below the baseline render as shorter bars
    and are annotated with a minus marker.
    """
    if not data:
        return title
    label_width = max(len(label) for label in data)
    values = list(data.values())
    low = min(values + ([baseline] if baseline is not None else []))
    high = max(values + ([baseline] if baseline is not None else []))
    span = (high - low) or 1.0
    lines = [title] if title else []
    for label, value in data.items():
        filled = int(round(width * (value - low) / span))
        bar = "#" * filled
        marker = ""
        if baseline is not None and value < baseline:
            marker = " (below baseline)"
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} "
            + fmt.format(value) + marker
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Render groups of bars (one sub-chart per group key)."""
    sections = [title] if title else []
    for group, data in groups.items():
        sections.append(bar_chart(data, title=f"[{group}]", width=width,
                                  fmt=fmt))
    return "\n".join(sections)
