"""Run diffing: flag out-of-noise-band metric deltas between runs.

``repro diff`` compares two metric sources — telemetry directories
(schema-v2 run manifests carry full per-job results) and/or baseline
documents — and classifies every per-entry metric delta:

* **regression** — the metric left ``value ± band`` in the
  unfavourable direction (lower IPC, higher mispredict rate, ...);
* **improvement** — it left the band in the favourable direction;
* within-band moves and informational metrics (``stall.*``) are
  reported but never gate.

:attr:`DiffReport.exit_code` is the CI contract: ``0`` when clean,
``1`` on any regression (or when the candidate is missing entries the
reference has), so the regression-gate job is just ``repro diff
telemetry --against baselines/base.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional

from repro.analysis.baseline import (
    ABSOLUTE_BAND_FLOOR,
    RELATIVE_BAND_FLOOR,
    load_baseline,
    metric_direction,
    metrics_from_result,
)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    name: str
    before: float
    after: float
    band: float
    direction: str  #: 'higher', 'lower', or 'info'

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def regression(self) -> bool:
        """Out of band in the unfavourable direction (never for info)."""
        if self.direction == "higher":
            return self.after < self.before - self.band
        if self.direction == "lower":
            return self.after > self.before + self.band
        return False

    @property
    def improvement(self) -> bool:
        """Out of band in the favourable direction (never for info)."""
        if self.direction == "higher":
            return self.after > self.before + self.band
        if self.direction == "lower":
            return self.after < self.before - self.band
        return False

    @property
    def flag(self) -> str:
        if self.regression:
            return "REGRESSION"
        if self.improvement:
            return "improved"
        return ""


@dataclasses.dataclass
class EntryDiff:
    """All metric deltas of one (benchmark × strategy) entry."""

    key: str
    deltas: List[MetricDelta]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improvement]


@dataclasses.dataclass
class DiffReport:
    """Full comparison of two metric sources."""

    before_label: str
    after_label: str
    entries: List[EntryDiff]
    #: Entry keys present in the reference but absent from the candidate.
    missing: List[str]
    #: Entry keys only the candidate has (reported, never gating).
    extra: List[str]
    #: Provenance caveats (e.g. the sources came from different git
    #: SHAs) — printed with the report, never part of the exit code.
    notes: List[str] = dataclasses.field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for e in self.entries for d in e.regressions]

    @property
    def exit_code(self) -> int:
        """``0`` clean, ``1`` on regressions or missing entries."""
        return 1 if self.regressions or self.missing else 0

    def to_dict(self) -> dict:
        """Machine-readable report (``repro diff --json``)."""
        return {
            "before": self.before_label,
            "after": self.after_label,
            "exit_code": self.exit_code,
            "notes": list(self.notes),
            "missing": list(self.missing),
            "extra": list(self.extra),
            "entries": [
                {
                    "key": entry.key,
                    "regressions": len(entry.regressions),
                    "metrics": [
                        {
                            "name": delta.name,
                            "before": delta.before,
                            "after": delta.after,
                            "delta": delta.delta,
                            "band": delta.band,
                            "direction": delta.direction,
                            "flag": delta.flag,
                        }
                        for delta in entry.deltas
                    ],
                }
                for entry in self.entries
            ],
        }

    def render(self) -> str:
        """Terminal diff summary, gated metrics first per entry."""
        lines = [f"diff: {self.after_label} vs {self.before_label}"]
        lines.extend(f"note: {note}" for note in self.notes)
        for entry in self.entries:
            flagged = entry.regressions + entry.improvements
            marker = (f"{len(entry.regressions)} regression(s)"
                      if entry.regressions else "ok")
            lines.append(f"  {entry.key}: {marker}")
            for delta in flagged:
                lines.append(
                    f"    {delta.flag:<10} {delta.name:<30} "
                    f"{delta.before:.4f} -> {delta.after:.4f} "
                    f"(band ±{delta.band:.4f})"
                )
        for key in self.missing:
            lines.append(f"  {key}: MISSING from {self.after_label}")
        for key in self.extra:
            lines.append(f"  {key}: only in {self.after_label} (ignored)")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing entr(y/ies) "
            f"-> exit {self.exit_code}"
        )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown diff report (for CI artifacts)."""
        lines = [
            "# Run diff",
            "",
            f"`{self.after_label}` vs `{self.before_label}` — "
            f"**{len(self.regressions)} regression(s)**, "
            f"{len(self.missing)} missing entries.",
            "",
            "| entry | metric | before | after | band | flag |",
            "| --- | --- | ---: | ---: | ---: | --- |",
        ]
        for entry in self.entries:
            for delta in entry.deltas:
                if not delta.flag and delta.direction == "info":
                    continue
                lines.append(
                    f"| {entry.key} | `{delta.name}` "
                    f"| {delta.before:.4f} | {delta.after:.4f} "
                    f"| ±{delta.band:.4f} | {delta.flag} |"
                )
        for key in self.missing:
            lines.append(f"| {key} | — | — | — | — | MISSING |")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Loading metric sources.
# ----------------------------------------------------------------------
def entries_from_manifest(manifest: dict) -> Dict[str, Dict[str, float]]:
    """``{key: metrics}`` from a schema-v2 run manifest.

    Only default-seed jobs participate (seeded replicates exist to
    widen baseline noise bands, not to be gated); jobs without a result
    payload (v1 manifests, skipped jobs) are ignored.
    """
    entries: Dict[str, Dict[str, float]] = {}
    for record in manifest.get("jobs", ()):
        result = record.get("result")
        if result is None or record.get("seed") is not None:
            continue
        benchmark = record.get("benchmark") or result.get("benchmark")
        strategy = record.get("strategy") or result.get("strategy")
        entries[f"{benchmark}|{strategy}"] = metrics_from_result(result)
    return entries


def _provenance(document: dict) -> dict:
    """``{git_sha, git_dirty}`` of a manifest or baseline document."""
    return {
        "git_sha": document.get("git_sha"),
        "git_dirty": document.get("git_dirty"),
    }


def _load_source(path: str):
    """Resolve a diff operand to ``(label, metrics, bands, provenance)``.

    Accepts a telemetry directory (containing ``manifest.json``), a
    manifest JSON file, or a baseline JSON document.  ``bands`` is
    empty for manifests — the diff then applies the default floors.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        path = os.path.join(path, "manifest.json")
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)

    if "entries" in document:  # baseline document
        document = load_baseline(path)  # re-read for schema validation
        metrics: Dict[str, Dict[str, float]] = {}
        bands: Dict[str, Dict[str, float]] = {}
        for key, entry in document["entries"].items():
            metrics[key] = {
                name: cell["value"] for name, cell in entry["metrics"].items()
            }
            bands[key] = {
                name: cell["band"] for name, cell in entry["metrics"].items()
            }
        return path, metrics, bands, _provenance(document)
    if "jobs" in document:  # run manifest
        return path, entries_from_manifest(document), {}, _provenance(
            document)
    raise ValueError(
        f"{path}: neither a run manifest (jobs) nor a baseline (entries)"
    )


def default_band(before: float) -> float:
    """Band used when the reference carries no noise band of its own."""
    return max(RELATIVE_BAND_FLOOR * abs(before), ABSOLUTE_BAND_FLOOR)


def diff_sources(before: str, after: str) -> DiffReport:
    """Compare two metric sources (paths) into a :class:`DiffReport`.

    Noise bands come from the *reference* (``before``) when it is a
    baseline document; otherwise the default floors apply.
    """
    before_label, before_metrics, before_bands, before_prov = _load_source(
        before)
    after_label, after_metrics, _, after_prov = _load_source(after)

    notes: List[str] = []
    before_sha = before_prov.get("git_sha")
    after_sha = after_prov.get("git_sha")
    if before_sha and after_sha and before_sha != after_sha:
        notes.append(
            f"sources come from different commits "
            f"({before_sha[:10]} vs {after_sha[:10]}) — deltas mix code "
            "changes with measurement noise")
    for label, prov in ((before_label, before_prov),
                        (after_label, after_prov)):
        if prov.get("git_dirty"):
            notes.append(
                f"{label} was captured from a dirty working tree")

    entries: List[EntryDiff] = []
    missing: List[str] = []
    for key in sorted(before_metrics):
        if key not in after_metrics:
            missing.append(key)
            continue
        deltas: List[MetricDelta] = []
        bands = before_bands.get(key, {})
        after_entry = after_metrics[key]
        for name in sorted(before_metrics[key]):
            if name not in after_entry:
                continue
            value = before_metrics[key][name]
            band: Optional[float] = bands.get(name)
            deltas.append(MetricDelta(
                name=name,
                before=value,
                after=after_entry[name],
                band=band if band is not None else default_band(value),
                direction=metric_direction(name),
            ))
        entries.append(EntryDiff(key=key, deltas=deltas))
    extra = sorted(set(after_metrics) - set(before_metrics))
    return DiffReport(
        before_label=before_label,
        after_label=after_label,
        entries=entries,
        missing=missing,
        extra=extra,
        notes=notes,
    )
