"""Golden-metric baselines with replication-derived noise bands.

``repro baseline capture`` snapshots one metrics document per machine
variant into ``baselines/*.json``.  Each (benchmark × strategy) entry
stores the default-seed value of every gated metric plus a noise band
derived from re-running the same cell under replicate workload seeds:
a later run is only flagged as a regression when it leaves
``value ± band`` in the unfavourable direction (see
:mod:`repro.analysis.diffing`).

The simulator is fully deterministic for a fixed seed, so the band is
not run-to-run jitter — it is *workload sensitivity*: how much the
metric moves when the generated instruction stream changes shape.  A
code change that stays inside that envelope is indistinguishable from
re-rolling the workload and should not fail CI.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.attribution import Attribution

#: Baseline document schema; bump on incompatible layout changes.
BASELINE_SCHEMA_VERSION = 1

#: Gated metrics and the direction that counts as "better".  Anything
#: not listed (notably the per-category ``stall.*`` IPC losses) is
#: informational: reported in diffs, never part of the exit code.
METRIC_DIRECTIONS: Dict[str, str] = {
    "ipc": "higher",
    "tc_hit_rate": "higher",
    "l1d_hit_rate": "higher",
    "pct_tc_instructions": "higher",
    "pct_intra_cluster_forwarding": "higher",
    "mispredict_rate": "lower",
    "avg_forward_distance": "lower",
}

#: Noise-band floors: never gate tighter than 1% relative or this
#: absolute slack, so zero-valued and near-zero metrics stay stable.
RELATIVE_BAND_FLOOR = 0.01
ABSOLUTE_BAND_FLOOR = 1e-3


def metric_direction(name: str) -> str:
    """``'higher'``, ``'lower'``, or ``'info'`` for a metric name."""
    return METRIC_DIRECTIONS.get(name, "info")


def metrics_from_result(result) -> Dict[str, float]:
    """Flat metric map of one run: gated scalars + ``stall.*`` losses.

    Accepts a :class:`~repro.core.simulator.SimResult` or its
    ``to_dict`` payload.
    """
    if not isinstance(result, Mapping):
        result = result.to_dict()
    metrics = {name: float(result[name]) for name in METRIC_DIRECTIONS}
    attribution = Attribution.from_result(result)
    for category, loss in attribution.loss_by_category().items():
        metrics[f"stall.{category}"] = loss
    return metrics


def noise_band(value: float, replicates: Iterable[float]) -> float:
    """Band half-width: replicate spread, floored at 1% / absolute."""
    spread = max((abs(rep - value) for rep in replicates), default=0.0)
    return max(spread, RELATIVE_BAND_FLOOR * abs(value), ABSOLUTE_BAND_FLOOR)


def entry_key(benchmark: str, strategy: str) -> str:
    """Canonical ``"bench|Strategy Label"`` entry key."""
    return f"{benchmark}|{strategy}"


def capture_baseline(
    benchmarks: Sequence[str],
    specs: Sequence,
    config,
    machine: str,
    instructions: int,
    warmup: int,
    seeds: Sequence[int] = (1, 2),
    engine=None,
) -> dict:
    """Run the grid (default seed + replicates) and build the document.

    The default-seed run provides each metric's golden ``value``; the
    seeded replicates only widen the noise band.  All jobs go through
    one :class:`~repro.runtime.ExperimentEngine` run, so they are
    cached, parallelised, and telemetered like any other sweep.
    """
    from repro.runtime import ExperimentEngine, SimJob

    engine = engine if engine is not None else ExperimentEngine()
    cells = [(benchmark, spec) for benchmark in benchmarks for spec in specs]
    jobs: List[SimJob] = []
    for benchmark, spec in cells:
        for seed in (None, *seeds):
            jobs.append(SimJob(
                benchmark=benchmark, spec=spec, config=config,
                instructions=instructions, warmup=warmup, seed=seed,
            ))
    results = engine.run(jobs)

    entries = {}
    per_cell = 1 + len(seeds)
    for position, (benchmark, spec) in enumerate(cells):
        chunk = results[position * per_cell:(position + 1) * per_cell]
        value_metrics = metrics_from_result(chunk[0])
        replicate_metrics = [metrics_from_result(r) for r in chunk[1:]]
        entries[entry_key(benchmark, spec.label)] = {
            "benchmark": benchmark,
            "strategy": spec.label,
            "metrics": {
                name: {
                    "value": value,
                    "mean": (
                        sum([value] + [rep.get(name, 0.0)
                                       for rep in replicate_metrics])
                        / (1 + len(replicate_metrics))
                    ),
                    "band": noise_band(
                        value,
                        (rep.get(name, 0.0) for rep in replicate_metrics),
                    ),
                }
                for name, value in sorted(value_metrics.items())
            },
        }

    from repro.obs.manifest import git_dirty, git_sha

    return {
        "schema": BASELINE_SCHEMA_VERSION,
        "created": time.time(),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "machine": machine,
        "instructions": int(instructions),
        "warmup": int(warmup),
        "seeds": list(seeds),
        "entries": entries,
    }


def write_baseline(path: str, document: dict) -> str:
    """Write a baseline document as pretty-printed JSON; returns path."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict:
    """Read a baseline document back, validating its schema version."""
    with open(os.fspath(path), encoding="utf-8") as handle:
        document = json.load(handle)
    schema: Optional[int] = document.get("schema")
    if schema != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {schema!r} in {path} "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    return document
