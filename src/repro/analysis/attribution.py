"""Top-down IPC-loss attribution tables.

Every simulation carries a per-cluster, per-category decomposition of
its lost retire slots (``SimResult.cycle_accounting``, produced by the
always-on :class:`repro.core.accounting.CycleAccounting`).  This module
turns that raw counter bag into the analyst-facing artifact: a table
that explains, category by category, where the IPC gap versus the
ideal-width machine went.

The decomposition is exact by construction — lost slots sum to
``width * cycles - retired`` — so the rendered table always accounts
for 100% of the gap; :meth:`Attribution.gap_error` exposes the
(floating-point-only) residual for tests and reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Tuple

from repro.core.accounting import CYCLE_LOSS_CATEGORIES


@dataclasses.dataclass(frozen=True)
class Attribution:
    """IPC-loss attribution of one run, detached from the simulator.

    Built from a :class:`~repro.core.simulator.SimResult` or its
    ``to_dict`` payload (e.g. a job record inside a run manifest), so
    analysis is purely post-hoc — no re-simulation.
    """

    benchmark: str
    strategy: str
    width: int
    cycles: int
    retired: int
    ipc: float
    #: Lost retire slots, ``{cluster: {category: slots}}`` with cluster
    #: keys ``"0"``.. plus the ``"frontend"`` pseudo-cluster.
    cycle_accounting: Dict[str, Dict[str, int]]

    @classmethod
    def from_result(cls, result) -> "Attribution":
        """Build from a ``SimResult`` or its ``to_dict`` payload."""
        if not isinstance(result, Mapping):
            result = result.to_dict()
        return cls(
            benchmark=str(result["benchmark"]),
            strategy=str(result["strategy"]),
            width=int(result["width"]),
            cycles=int(result["cycles"]),
            retired=int(result["retired"]),
            ipc=float(result["ipc"]),
            cycle_accounting={
                str(cluster): {str(cat): int(n) for cat, n in per.items()}
                for cluster, per in result["cycle_accounting"].items()
            },
        )

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def ipc_gap(self) -> float:
        """IPC lost versus the ideal-width machine."""
        return self.width - self.ipc

    @property
    def lost_slots(self) -> int:
        return sum(
            slots
            for per_cluster in self.cycle_accounting.values()
            for slots in per_cluster.values()
        )

    def loss_by_category(self) -> Dict[str, float]:
        """IPC lost per category, summed across clusters."""
        cycles = self.cycles or 1
        totals: Dict[str, float] = {}
        for per_cluster in self.cycle_accounting.values():
            for category, slots in per_cluster.items():
                totals[category] = totals.get(category, 0.0) + slots / cycles
        return totals

    def loss_by_cluster(self) -> Dict[str, float]:
        """IPC lost per cluster (including ``frontend``)."""
        cycles = self.cycles or 1
        return {
            cluster: sum(per_cluster.values()) / cycles
            for cluster, per_cluster in self.cycle_accounting.items()
        }

    def worst_cluster(self, category: str) -> Tuple[str, float]:
        """``(cluster, ipc_loss)`` of the top contributor to ``category``."""
        cycles = self.cycles or 1
        best = ("-", 0.0)
        for cluster, per_cluster in self.cycle_accounting.items():
            loss = per_cluster.get(category, 0) / cycles
            if loss > best[1]:
                best = (cluster, loss)
        return best

    def gap_error(self) -> float:
        """Relative mismatch between the gap and the category sum.

        Zero up to floating point: the accounting attributes every
        unfilled retire slot to exactly one category.
        """
        gap = self.ipc_gap
        if gap == 0:
            return 0.0
        return abs(sum(self.loss_by_category().values()) - gap) / abs(gap)

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, float, float, str]]:
        """``(category, ipc_loss, share_of_gap, worst_cluster)`` rows,
        largest loss first, known categories only, zero rows dropped."""
        losses = self.loss_by_category()
        gap = self.ipc_gap or 1.0
        ordered = sorted(
            (cat for cat in CYCLE_LOSS_CATEGORIES if losses.get(cat)),
            key=lambda cat: -losses[cat],
        )
        out = []
        for category in ordered:
            cluster, cluster_loss = self.worst_cluster(category)
            out.append((
                category,
                losses[category],
                losses[category] / gap,
                f"{cluster} ({cluster_loss:.3f})",
            ))
        return out

    def render(self) -> str:
        """Terminal attribution table for this run."""
        lines = [
            f"{self.benchmark} × {self.strategy} — "
            f"IPC {self.ipc:.3f} of {self.width} "
            f"(gap {self.ipc_gap:.3f} over {self.cycles} cycles)",
            f"  {'category':<20} {'IPC loss':>9} {'% gap':>7}  worst cluster",
        ]
        for category, loss, share, worst in self.rows():
            lines.append(
                f"  {category:<20} {loss:>9.3f} {share:>7.1%}  {worst}"
            )
        lines.append(
            f"  {'(total)':<20} {sum(self.loss_by_category().values()):>9.3f}"
            f" {1.0:>7.1%}  residual {self.gap_error():.1e}"
        )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown attribution table for this run."""
        lines = [
            f"### {self.benchmark} × {self.strategy}",
            "",
            f"IPC **{self.ipc:.3f}** of width {self.width} — "
            f"gap {self.ipc_gap:.3f} over {self.cycles} cycles.",
            "",
            "| category | IPC loss | % of gap | worst cluster |",
            "| --- | ---: | ---: | --- |",
        ]
        for category, loss, share, worst in self.rows():
            lines.append(
                f"| `{category}` | {loss:.3f} | {share:.1%} | {worst} |"
            )
        return "\n".join(lines)
