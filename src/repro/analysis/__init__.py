"""Post-simulation analysis tooling.

Utilities that sit on top of :class:`~repro.core.simulator.SimResult` and
live :class:`~repro.core.pipeline.Pipeline` objects: hardware utilization
reports, CSV export of result matrices, and the text bar charts used to
render the paper's figures in a terminal.
"""

from repro.analysis.utilization import UtilizationReport, collect_utilization
from repro.analysis.export import results_to_csv, results_to_rows
from repro.analysis.charts import bar_chart
from repro.analysis.energy import EnergyModel, EnergyReport, estimate_energy

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "UtilizationReport",
    "bar_chart",
    "collect_utilization",
    "estimate_energy",
    "results_to_csv",
    "results_to_rows",
]
