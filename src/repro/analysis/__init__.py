"""Post-simulation analysis tooling.

Utilities that sit on top of :class:`~repro.core.simulator.SimResult` and
live :class:`~repro.core.pipeline.Pipeline` objects: hardware utilization
reports, CSV export of result matrices, the text bar charts used to
render the paper's figures in a terminal, and the performance-analysis
and regression subsystem behind ``repro analyze`` / ``repro baseline``
/ ``repro diff`` — top-down IPC-loss attribution, golden-metric
baselines with noise bands, and out-of-band run diffing.
"""

from repro.analysis.utilization import UtilizationReport, collect_utilization
from repro.analysis.export import results_to_csv, results_to_rows
from repro.analysis.charts import bar_chart
from repro.analysis.energy import EnergyModel, EnergyReport, estimate_energy
from repro.analysis.attribution import Attribution
from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    capture_baseline,
    load_baseline,
    metric_direction,
    metrics_from_result,
    write_baseline,
)
from repro.analysis.diffing import DiffReport, MetricDelta, diff_sources
from repro.analysis.reporting import (
    AnalysisReport,
    AssignmentQuality,
    analyze_manifest,
)
from repro.analysis.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryStore,
    append_trajectory,
    load_points,
    load_trajectory,
    metric_series,
    sparkline,
)
from repro.analysis.phases import (
    PHASE_SIGNATURE_VERSION,
    Phase,
    PhaseReport,
    compare_timelines,
    detect_phases,
    load_timeline,
    render_comparison,
    render_timeline,
    segment_timeline,
    window_features,
)
from repro.analysis.bench import run_bench
from repro.analysis.degradation import (
    CheckReport,
    bisect_commits,
    check_history,
)

__all__ = [
    "AnalysisReport",
    "AssignmentQuality",
    "Attribution",
    "BASELINE_SCHEMA_VERSION",
    "CheckReport",
    "DiffReport",
    "EnergyModel",
    "EnergyReport",
    "HISTORY_SCHEMA_VERSION",
    "HistoryStore",
    "MetricDelta",
    "PHASE_SIGNATURE_VERSION",
    "Phase",
    "PhaseReport",
    "UtilizationReport",
    "analyze_manifest",
    "append_trajectory",
    "bar_chart",
    "bisect_commits",
    "capture_baseline",
    "check_history",
    "collect_utilization",
    "compare_timelines",
    "detect_phases",
    "diff_sources",
    "estimate_energy",
    "load_baseline",
    "load_points",
    "load_timeline",
    "load_trajectory",
    "metric_direction",
    "metric_series",
    "metrics_from_result",
    "render_comparison",
    "render_timeline",
    "segment_timeline",
    "results_to_csv",
    "results_to_rows",
    "run_bench",
    "sparkline",
    "window_features",
    "write_baseline",
]
