"""Cluster and functional-unit utilization reporting.

The paper argues about *where* instructions execute; this module reports
how hard each cluster and unit actually worked — useful when diagnosing
why a placement strategy that improves forwarding distance fails to
improve IPC (load imbalance, port pressure, FU class contention).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.pipeline import Pipeline


@dataclasses.dataclass(frozen=True)
class UtilizationReport:
    """Utilization snapshot of a pipeline after a run."""

    cycles: int
    #: Dispatches per cluster.
    cluster_dispatches: List[int]
    #: Dispatches per (cluster, unit-name).
    unit_dispatches: Dict[str, int]
    #: Trace cache hit rate and L1D hit rate for context.
    tc_hit_rate: float
    l1d_hit_rate: float

    @property
    def cluster_shares(self) -> List[float]:
        """Fraction of all dispatches handled by each cluster."""
        total = sum(self.cluster_dispatches)
        if not total:
            return [0.0] * len(self.cluster_dispatches)
        return [d / total for d in self.cluster_dispatches]

    @property
    def imbalance(self) -> float:
        """Max/mean ratio of cluster dispatch counts (1.0 = perfectly flat)."""
        dispatches = self.cluster_dispatches
        if not dispatches or not sum(dispatches):
            return 1.0
        mean = sum(dispatches) / len(dispatches)
        return max(dispatches) / mean

    def busiest_units(self, top: int = 5) -> List[tuple]:
        """(unit, dispatches) pairs sorted by load, busiest first."""
        ranked = sorted(self.unit_dispatches.items(), key=lambda kv: -kv[1])
        return ranked[:top]

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"Utilization over {self.cycles} cycles"]
        for i, (count, share) in enumerate(
                zip(self.cluster_dispatches, self.cluster_shares)):
            lines.append(f"  cluster {i}: {count} dispatches ({share:.1%})")
        lines.append(f"  imbalance (max/mean): {self.imbalance:.2f}")
        lines.append(f"  trace cache hit rate: {self.tc_hit_rate:.1%}")
        lines.append(f"  L1D hit rate: {self.l1d_hit_rate:.1%}")
        lines.append("  busiest units: " + ", ".join(
            f"{name}={count}" for name, count in self.busiest_units()))
        return "\n".join(lines)


def collect_utilization(pipeline: Pipeline) -> UtilizationReport:
    """Snapshot utilization counters from a (run) pipeline."""
    cluster_dispatches = []
    unit_dispatches: Dict[str, int] = {}
    for cluster in pipeline.clusters:
        total = 0
        for unit in cluster.units:
            key = f"c{cluster.cluster_id}.{unit.name}"
            unit_dispatches[key] = unit.dispatched
            total += unit.dispatched
        cluster_dispatches.append(total)
    return UtilizationReport(
        cycles=pipeline.stats.cycles,
        cluster_dispatches=cluster_dispatches,
        unit_dispatches=unit_dispatches,
        tc_hit_rate=pipeline.trace_cache.hit_rate,
        l1d_hit_rate=pipeline.memory.l1d.hit_rate,
    )
