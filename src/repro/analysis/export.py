"""CSV export of simulation results.

Flattens :class:`~repro.core.simulator.SimResult` objects into rows for
spreadsheet/pandas consumption.  Nested dictionaries (critical-source
breakdown, producer repetition, option counts) become dotted columns.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List

from repro.core.simulator import SimResult

#: Scalar SimResult fields exported directly, in column order.
_SCALAR_FIELDS = (
    "benchmark",
    "strategy",
    "cycles",
    "retired",
    "ipc",
    "pct_tc_instructions",
    "avg_trace_size",
    "pct_deps_critical",
    "pct_critical_inter_trace",
    "pct_intra_cluster_forwarding",
    "avg_forward_distance",
    "fill_migration_rate",
    "chain_migration_rate",
    "pct_migrating_intra_cluster",
    "mispredict_rate",
    "tc_hit_rate",
    "l1d_hit_rate",
)


def results_to_rows(results: Iterable[SimResult]) -> List[Dict[str, object]]:
    """Flatten results into dictionaries with stable keys."""
    rows = []
    for result in results:
        row: Dict[str, object] = {
            field: getattr(result, field) for field in _SCALAR_FIELDS
        }
        for key, value in result.critical_source.items():
            row[f"critical_source.{key}"] = value
        for key, value in result.producer_repetition.items():
            row[f"producer_repetition.{key}"] = value
        for key, value in result.option_counts.items():
            row[f"option_counts.{key}"] = value
        rows.append(row)
    return rows


def results_to_csv(results: Iterable[SimResult]) -> str:
    """Render results as a CSV string (header + one row per result)."""
    rows = results_to_rows(results)
    if not rows:
        return ""
    # Union of keys across rows, scalar fields first for readability.
    keys: List[str] = list(_SCALAR_FIELDS)
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=keys, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
