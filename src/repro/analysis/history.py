"""Per-commit performance history: the store behind ``repro history``.

A history *point* is one measurement of the pinned bench matrix (see
:mod:`repro.analysis.bench`) tied to the exact code and host that
produced it: git SHA + dirty-tree flag + host fingerprint + timestamp
+ run id, mapping ``"bench|Strategy"`` entry keys to ``{metric:
{value, band}}`` cells.  Metrics come in two families:

* simulated metrics (``ipc``, ``tc_hit_rate``, ``stall.*``, ... — the
  same gated set ``repro baseline`` snapshots) — deterministic for a
  fixed seed, comparable across hosts;
* wall-clock metrics (``wall.kcyc_per_s``, ``wall.phase_share.*``)
  from the :class:`~repro.obs.profiler.PhaseProfiler` — only
  comparable between points that share a host fingerprint, which the
  degradation check (:mod:`repro.analysis.degradation`) enforces.

Two storage shapes share the same point schema:

``BENCH_7.json``
    The committed append-only *trajectory*: ``{"schema": ...,
    "points": [...]}``, newest last.  ``repro bench`` appends to it,
    ``repro check`` gates the newest point against the trailing
    window, CI commits the artifact back so the history grows with
    the repo.
``perf-history/``
    A directory store with one JSON file per point (named by
    timestamp + short SHA + run id), useful when many hosts measure
    concurrently and a single JSON file would be a merge conflict.

Direction handling extends the baseline table: ``wall.kcyc_per_s`` is
gated (higher is better — it *is* the simulator's throughput);
``wall.phase_share.*`` is informational.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    metric_direction as _baseline_direction,
)
from repro.obs.manifest import git_sha, host_fingerprint, host_info

#: History point / trajectory schema; bump on incompatible changes.
HISTORY_SCHEMA_VERSION = 1

#: Default committed trajectory file (this repo's PR-7 artifact).
DEFAULT_TRAJECTORY = "BENCH_7.json"

#: Default directory store.
DEFAULT_STORE_DIR = "perf-history"

#: Wall-clock metrics and their gate directions.  Anything else under
#: ``wall.`` is informational.
WALL_METRIC_DIRECTIONS: Dict[str, str] = {
    "wall.kcyc_per_s": "higher",
}

#: Wall-clock noise floor: host scheduling jitter dwarfs the simulated
#: metrics' 1% floor, so wall metrics never gate tighter than this
#: relative band.
WALL_RELATIVE_BAND_FLOOR = 0.15

#: The sparkline ramp used by ``repro history``.
_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def metric_direction(name: str) -> str:
    """``'higher'``/``'lower'``/``'info'``, wall-metric aware."""
    if name.startswith("wall."):
        return WALL_METRIC_DIRECTIONS.get(name, "info")
    return _baseline_direction(name)


def is_wall_metric(name: str) -> bool:
    """Wall-clock metrics only compare within one host fingerprint."""
    return name.startswith("wall.")


# ----------------------------------------------------------------------
# Points.
# ----------------------------------------------------------------------
def make_point(
    entries: Dict[str, Dict[str, dict]],
    run_id: str,
    profile: str,
    config: Optional[dict] = None,
    ts: Optional[float] = None,
    sha: Optional[str] = None,
    dirty: Optional[bool] = None,
    fingerprint: Optional[str] = None,
) -> dict:
    """Assemble one history point around measured ``entries``.

    ``entries`` maps entry keys to ``{metric: {"value": v, "band": b}}``
    cells; identity fields default to the current repo/host.
    """
    from repro.obs.manifest import git_dirty

    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "run_id": run_id,
        "ts": time.time() if ts is None else float(ts),
        "git_sha": git_sha() if sha is None else sha,
        "git_dirty": git_dirty() if dirty is None else dirty,
        "fingerprint": (host_fingerprint() if fingerprint is None
                        else fingerprint),
        "host": host_info(),
        "profile": profile,
        "config": dict(config or {}),
        "entries": entries,
    }


def validate_point(point: dict) -> dict:
    """Schema-check one point; returns it (raises ``ValueError``)."""
    if not isinstance(point, dict):
        raise ValueError("history point must be a JSON object")
    if point.get("schema") != HISTORY_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported history point schema {point.get('schema')!r} "
            f"(expected {HISTORY_SCHEMA_VERSION})"
        )
    entries = point.get("entries")
    if not isinstance(entries, dict) or not entries:
        raise ValueError("history point has no entries")
    for key, metrics in entries.items():
        if not isinstance(metrics, dict):
            raise ValueError(f"entry {key!r} is not a metric map")
        for name, cell in metrics.items():
            if (not isinstance(cell, dict) or "value" not in cell
                    or "band" not in cell):
                raise ValueError(
                    f"entry {key!r} metric {name!r} lacks value/band")
    return point


def point_label(point: dict) -> str:
    """Short human identity: ``sha7[*] profile`` (``*`` = dirty tree)."""
    sha = point.get("git_sha") or "unknown"
    short = sha[:7] if isinstance(sha, str) else "unknown"
    dirty = "*" if point.get("git_dirty") else ""
    return f"{short}{dirty}"


# ----------------------------------------------------------------------
# The committed trajectory file.
# ----------------------------------------------------------------------
def _write_atomic(path: str, document: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                                    suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def load_trajectory(path: str) -> dict:
    """Read a ``BENCH_*.json`` trajectory, validating its schema."""
    with open(os.fspath(path), encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: trajectory must be a JSON object")
    if document.get("schema") != HISTORY_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trajectory schema "
            f"{document.get('schema')!r} "
            f"(expected {HISTORY_SCHEMA_VERSION})"
        )
    points = document.get("points")
    if not isinstance(points, list):
        raise ValueError(f"{path}: trajectory has no points list")
    return document


def append_trajectory(path: str, point: dict) -> dict:
    """Append ``point`` to the trajectory at ``path`` (created if
    missing); returns the updated document.  Append-only by
    construction: existing points are never rewritten, so a committed
    trajectory only ever grows."""
    validate_point(point)
    path = os.fspath(path)
    if os.path.exists(path):
        document = load_trajectory(path)
    else:
        document = {"schema": HISTORY_SCHEMA_VERSION, "points": []}
    document["points"].append(point)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    _write_atomic(path, document)
    return document


# ----------------------------------------------------------------------
# The directory store.
# ----------------------------------------------------------------------
class HistoryStore:
    """One JSON file per point under a ``perf-history/`` directory.

    File names sort chronologically (zero-padded integer timestamp
    first), so ``points()`` is the trajectory in measurement order
    even before the timestamps inside are consulted.
    """

    def __init__(self, root: str = DEFAULT_STORE_DIR) -> None:
        self.root = os.fspath(root)

    def _point_path(self, point: dict) -> str:
        ts = int(point.get("ts", 0))
        sha = point.get("git_sha") or "nogit"
        short = sha[:7] if isinstance(sha, str) else "nogit"
        dirty = "-dirty" if point.get("git_dirty") else ""
        run_id = str(point.get("run_id") or "norun")[:8]
        return os.path.join(
            self.root, f"{ts:012d}-{short}{dirty}-{run_id}.json")

    def add(self, point: dict) -> str:
        """Write one validated point; returns its file path."""
        validate_point(point)
        os.makedirs(self.root, exist_ok=True)
        path = self._point_path(point)
        _write_atomic(path, point)
        return path

    def points(self) -> List[dict]:
        """All parseable points, oldest first (torn files skipped)."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        points = []
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            try:
                with open(os.path.join(self.root, name),
                          encoding="utf-8") as handle:
                    point = validate_point(json.load(handle))
            except (OSError, ValueError):
                continue
            points.append(point)
        points.sort(key=lambda p: p.get("ts", 0.0))
        return points

    def latest(self) -> Optional[dict]:
        points = self.points()
        return points[-1] if points else None


def load_points(source: str) -> List[dict]:
    """Points from a trajectory file or a directory store, oldest first."""
    source = os.fspath(source)
    if os.path.isdir(source):
        return HistoryStore(source).points()
    document = load_trajectory(source)
    points = [validate_point(point) for point in document["points"]]
    points.sort(key=lambda p: p.get("ts", 0.0))
    return points


# ----------------------------------------------------------------------
# Series + rendering.
# ----------------------------------------------------------------------
def entry_metric(point: dict, metric: str,
                 entry: Optional[str] = None) -> Optional[float]:
    """``metric``'s value in ``point``: one entry's, or the mean.

    With ``entry=None`` the value is the mean over every entry that
    carries the metric — the "how is the matrix doing overall" view
    ``repro history`` defaults to.
    """
    entries = point.get("entries", {})
    if entry is not None:
        cell = entries.get(entry, {}).get(metric)
        return float(cell["value"]) if cell else None
    values = [float(cell["value"])
              for metrics in entries.values()
              for name, cell in metrics.items() if name == metric]
    if not values:
        return None
    return sum(values) / len(values)


def metric_series(points: Sequence[dict], metric: str,
                  entry: Optional[str] = None,
                  ) -> List[Tuple[dict, float]]:
    """``(point, value)`` pairs for every point carrying ``metric``."""
    series = []
    for point in points:
        value = entry_metric(point, metric, entry)
        if value is not None:
            series.append((point, value))
    return series


def sparkline(values: Iterable[float]) -> str:
    """Unicode sparkline of ``values`` (empty string for no values)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_TICKS[3] * len(values)
    span = high - low
    ticks = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_TICKS) - 1))
        ticks.append(_SPARK_TICKS[index])
    return "".join(ticks)


def render_history(points: Sequence[dict], metric: str,
                   entry: Optional[str] = None,
                   last: Optional[int] = None) -> str:
    """Terminal table + sparkline of ``metric`` across ``points``."""
    series = metric_series(points, metric, entry)
    if last:
        series = series[-last:]
    scope = entry if entry is not None else "mean over entries"
    if not series:
        return (f"no history points carry metric {metric!r} "
                f"({scope})")
    lines = [
        f"history: {metric} ({scope}) — {len(series)} point(s)",
        f"  {sparkline(value for _, value in series)}  "
        f"[{min(v for _, v in series):.4g} .. "
        f"{max(v for _, v in series):.4g}]",
        "",
        f"  {'commit':<10} {'when':<17} {'profile':<8} "
        f"{'host':<13} {metric:>14}",
    ]
    for point, value in series:
        when = time.strftime("%Y-%m-%d %H:%M",
                             time.localtime(point.get("ts", 0.0)))
        lines.append(
            f"  {point_label(point):<10} {when:<17} "
            f"{point.get('profile', '?'):<8} "
            f"{str(point.get('fingerprint', '?'))[:12]:<13} "
            f"{value:>14.4f}"
        )
    return "\n".join(lines)


def history_markdown(points: Sequence[dict], metric: str,
                     entry: Optional[str] = None) -> str:
    """Markdown export of one metric's trajectory (the CI artifact)."""
    series = metric_series(points, metric, entry)
    scope = entry if entry is not None else "mean over entries"
    lines = [
        "# Performance history",
        "",
        f"`{metric}` ({scope}) — {len(series)} point(s): "
        f"`{sparkline(value for _, value in series)}`",
        "",
        "| commit | dirty | when | profile | host | value |",
        "| --- | --- | --- | --- | --- | ---: |",
    ]
    for point, value in series:
        when = time.strftime("%Y-%m-%d %H:%M",
                             time.gmtime(point.get("ts", 0.0)))
        sha = point.get("git_sha") or "unknown"
        lines.append(
            f"| `{sha[:7] if isinstance(sha, str) else sha}` "
            f"| {'yes' if point.get('git_dirty') else 'no'} "
            f"| {when} | {point.get('profile', '?')} "
            f"| `{str(point.get('fingerprint', '?'))[:12]}` "
            f"| {value:.4f} |"
        )
    return "\n".join(lines)
