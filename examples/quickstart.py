#!/usr/bin/env python3
"""Quickstart: simulate a benchmark under two cluster assignment schemes.

Runs the synthetic ``gzip`` workload on the paper's baseline machine
(16-wide, four clusters, 2-cycle hops) with slot-based baseline assignment
and with FDRT retire-time assignment, then reports the speedup and the
forwarding behaviour behind it.

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import StrategySpec, simulate


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    budgets = dict(instructions=30_000, warmup=25_000)

    print(f"Simulating {benchmark!r} on the baseline CTCP ...")
    base = simulate(benchmark, StrategySpec(kind="base"), **budgets)
    print(f"  base IPC           : {base.ipc:.3f}")
    print(f"  from trace cache   : {base.pct_tc_instructions:.1%}")
    print(f"  mean trace size    : {base.avg_trace_size:.1f} instructions")
    print(f"  intra-cluster fwd  : {base.pct_intra_cluster_forwarding:.1%}")
    print(f"  mean fwd distance  : {base.avg_forward_distance:.2f} clusters")

    print("\nSimulating with FDRT retire-time cluster assignment ...")
    fdrt = simulate(benchmark, StrategySpec(kind="fdrt"), **budgets)
    print(f"  FDRT IPC           : {fdrt.ipc:.3f}")
    print(f"  intra-cluster fwd  : {fdrt.pct_intra_cluster_forwarding:.1%}")
    print(f"  mean fwd distance  : {fdrt.avg_forward_distance:.2f} clusters")

    print(f"\nFDRT speedup over base: {fdrt.speedup_over(base):.3f}x")
    total = sum(fdrt.option_counts.values())
    if total:
        mix = ", ".join(
            f"{k}={v / total:.0%}" for k, v in fdrt.option_counts.items()
        )
        print(f"FDRT option mix (Table 5): {mix}")


if __name__ == "__main__":
    main()
