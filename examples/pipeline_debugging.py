#!/usr/bin/env python3
"""Pipeline introspection: lifetimes, stall attribution, energy.

Demonstrates the diagnostic tooling: where instructions spend their
cycles, why the ROB head stalls, which clusters and units carry the
load, and where the (relative) energy goes.

    python examples/pipeline_debugging.py [benchmark]
"""

import sys

from repro import Simulator, StrategySpec
from repro.analysis import collect_utilization, estimate_energy
from repro.core.debug import LifetimeRecorder, StallAttributor


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    simulator = Simulator(benchmark, StrategySpec(kind="fdrt"))
    pipeline = simulator.pipeline

    print(f"warming up {benchmark!r} ...")
    pipeline.run(20_000)

    print("\n--- pipeline diagram (16 instructions) ---")
    recorder = LifetimeRecorder(pipeline, capacity=16)
    pipeline.run(100)
    recorder.detach()
    print(recorder.diagram(max_rows=16))
    print(f"mean fetch-to-retire latency: {recorder.mean_latency():.1f} cycles")

    print("\n--- ROB-head stall attribution (2000 cycles) ---")
    attributor = StallAttributor(pipeline)
    attributor.run(2000)
    print(attributor.render())

    print("\n--- utilization ---")
    print(collect_utilization(pipeline).render())

    print("\n--- energy estimate ---")
    print(estimate_energy(pipeline).render())


if __name__ == "__main__":
    main()
