#!/usr/bin/env python3
"""Generate a full reproduction report as a markdown file.

Runs every experiment (all tables and figures of the paper) and writes
REPORT.md.  At default budgets this takes tens of minutes; pass
``--quick`` for a fast draft on reduced budgets.

    python examples/generate_report.py [--quick] [output.md]
"""

import sys
import time

from repro.experiments.report import generate_report


def main() -> None:
    args = [a for a in sys.argv[1:]]
    quick = "--quick" in args
    if quick:
        args.remove("--quick")
    output = args[0] if args else "REPORT.md"

    budgets = dict(instructions=4_000, warmup=8_000) if quick else {}
    start = time.time()
    text = generate_report(**budgets)
    with open(output, "w") as handle:
        handle.write(text)
    print(f"wrote {output} in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
