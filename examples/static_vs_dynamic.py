#!/usr/bin/env python3
"""Static vs. dynamic cluster assignment.

The paper's introduction cites studies concluding that dynamic
assignment beats static (compiler) assignment.  This example reproduces
that contrast: a profile-guided *static* per-pc assignment is trained on
one run, then compared against the dynamic strategies on the same
program.

    python examples/static_vs_dynamic.py [benchmark]
"""

import sys

from repro import Simulator, StrategySpec
from repro.assign import train_static_assignment
from repro.workloads.generator import generate_program
from repro.workloads.profiles import profile_for


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    program = generate_program(profile_for(benchmark))

    print(f"training static assignment for {benchmark!r} ...")
    mapping = train_static_assignment(program, train_instructions=25_000,
                                      warmup=10_000)
    clusters = [0, 0, 0, 0]
    for cluster in mapping.values():
        clusters[cluster] += 1
    print(f"  {len(mapping)} static instructions partitioned {clusters}")

    specs = [
        ("base (slot)", StrategySpec(kind="base")),
        ("static (profile-guided)",
         StrategySpec(kind="static", static_mapping=mapping)),
        ("dynamic issue-time", StrategySpec(kind="issue", steer_latency=0)),
        ("dynamic FDRT", StrategySpec(kind="fdrt")),
    ]
    base = None
    print(f"\n{'strategy':<26} {'IPC':>6} {'speedup':>8} {'fwd dist':>9}")
    for name, spec in specs:
        simulator = Simulator(program, spec)
        simulator.warmup(30_000)
        result = simulator.run(40_000)
        if base is None:
            base = result
        print(f"{name:<26} {result.ipc:>6.3f} "
              f"{result.speedup_over(base):>8.3f} "
              f"{result.avg_forward_distance:>9.2f}")
    print("\nExpected shape: static beats the slot baseline (it at least")
    print("respects the profile's dependency structure) but loses to the")
    print("dynamic schemes, which adapt to per-instance critical inputs.")


if __name__ == "__main__":
    main()
