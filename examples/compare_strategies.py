#!/usr/bin/env python3
"""Compare every cluster assignment strategy on one benchmark.

Reproduces a single row of the paper's Figure 6 plus the Table 8 metrics,
for any benchmark in the catalog, running all strategies through the
``repro.runtime`` engine — in parallel with ``--jobs``, and cached so a
second invocation returns instantly:

    python examples/compare_strategies.py twolf
    python examples/compare_strategies.py mpeg2_dec --jobs 4
    python examples/compare_strategies.py twolf --jobs auto   # one worker/CPU
"""

import argparse

from repro import StrategySpec
from repro.experiments import run_matrix
from repro.runtime import ExperimentEngine, progress_printer

STRATEGIES = (
    StrategySpec(kind="base"),
    StrategySpec(kind="issue", steer_latency=0),
    StrategySpec(kind="issue", steer_latency=4),
    StrategySpec(kind="friendly"),
    StrategySpec(kind="friendly", middle_bias=True),
    StrategySpec(kind="fdrt"),
    StrategySpec(kind="fdrt", pinning=False),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="gzip")
    parser.add_argument("--jobs", default=None,
                        help="worker processes ('auto' = one per CPU)")
    args = parser.parse_args()

    engine = ExperimentEngine(jobs=args.jobs, progress=progress_printer())
    results = run_matrix(
        [args.benchmark], STRATEGIES,
        instructions=40_000, warmup=30_000, engine=engine,
    )

    print(f"\nbenchmark: {args.benchmark}\n")
    header = (f"{'strategy':<22} {'IPC':>6} {'speedup':>8} "
              f"{'intra-cl fwd':>13} {'fwd dist':>9}")
    print(header)
    print("-" * len(header))
    base = results[(args.benchmark, "Base")]
    for spec in STRATEGIES:
        result = results[(args.benchmark, spec.label)]
        print(f"{spec.label:<22} {result.ipc:>6.3f} "
              f"{result.speedup_over(base):>8.3f} "
              f"{result.pct_intra_cluster_forwarding:>12.1%} "
              f"{result.avg_forward_distance:>9.2f}")
    print(f"\n{engine.report.render()}")


if __name__ == "__main__":
    main()
