#!/usr/bin/env python3
"""Compare every cluster assignment strategy on one benchmark.

Reproduces a single row of the paper's Figure 6 plus the Table 8 metrics,
for any benchmark in the catalog:

    python examples/compare_strategies.py twolf
    python examples/compare_strategies.py mpeg2_dec
"""

import sys

from repro import Simulator, StrategySpec
from repro.workloads.generator import generate_program
from repro.workloads.profiles import profile_for

STRATEGIES = (
    StrategySpec(kind="base"),
    StrategySpec(kind="issue", steer_latency=0),
    StrategySpec(kind="issue", steer_latency=4),
    StrategySpec(kind="friendly"),
    StrategySpec(kind="friendly", middle_bias=True),
    StrategySpec(kind="fdrt"),
    StrategySpec(kind="fdrt", pinning=False),
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    program = generate_program(profile_for(benchmark))
    print(f"benchmark: {benchmark}  "
          f"(static program: {len(program.blocks)} blocks, "
          f"{program.static_size} instructions)\n")
    header = (f"{'strategy':<22} {'IPC':>6} {'speedup':>8} "
              f"{'intra-cl fwd':>13} {'fwd dist':>9}")
    print(header)
    print("-" * len(header))
    base = None
    for spec in STRATEGIES:
        simulator = Simulator(program, spec)
        simulator.warmup(30_000)
        result = simulator.run(40_000)
        if base is None:
            base = result
        print(f"{spec.label:<22} {result.ipc:>6.3f} "
              f"{result.speedup_over(base):>8.3f} "
              f"{result.pct_intra_cluster_forwarding:>12.1%} "
              f"{result.avg_forward_distance:>9.2f}")


if __name__ == "__main__":
    main()
