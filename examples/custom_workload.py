#!/usr/bin/env python3
"""Build a custom synthetic workload and characterize it.

Shows the workload-construction API: define a :class:`WorkloadProfile`
with your own instruction mix, branch behaviour and locality, generate
the program, and run the paper's Section 3 characterization on it.

    python examples/custom_workload.py
"""

from repro import Simulator, StrategySpec
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile


def main() -> None:
    # A pointer-chasing, hard-to-predict workload: small blocks, lots of
    # memory traffic with poor locality, unpredictable branches.
    profile = WorkloadProfile(
        name="pointer_chaser",
        description="example: linked-structure traversal",
        num_funcs=5,
        loops_per_func=2,
        diamonds_per_loop=3,
        mean_block_size=4.5,
        frac_mem=0.40,
        frac_load=0.85,
        loop_trip_mean=24,
        frac_pattern_branches=0.1,
        frac_hard_branches=0.35,
        branch_bias=0.62,
        p_near=0.38,
        p_mid=0.15,
        working_set_kb=512,
        stride_frac=0.15,
        hot_frac=0.5,
        seed=99,
    )
    program = generate_program(profile)
    print(f"generated {program!r}")

    simulator = Simulator(program, StrategySpec(kind="base"))
    simulator.warmup(25_000)
    result = simulator.run(30_000)

    print("\nCharacterization (cf. paper Tables 1-2, Figure 4):")
    print(f"  IPC                      : {result.ipc:.3f}")
    print(f"  %% from trace cache      : {result.pct_tc_instructions:.1%}")
    print(f"  mean trace size          : {result.avg_trace_size:.1f}")
    print(f"  mispredict rate          : {result.mispredict_rate:.1%}")
    print(f"  deps critical            : {result.pct_deps_critical:.1%}")
    print(f"  critical inter-trace     : {result.pct_critical_inter_trace:.1%}")
    src = result.critical_source
    print(f"  critical source          : RF {src['RF']:.1%}, "
          f"RS1 {src['RS1']:.1%}, RS2 {src['RS2']:.1%}")

    fdrt_sim = Simulator(program, StrategySpec(kind="fdrt"))
    fdrt_sim.warmup(25_000)
    fdrt = fdrt_sim.run(30_000)
    print(f"\nFDRT speedup on this workload: {fdrt.speedup_over(result):.3f}x")


if __name__ == "__main__":
    main()
