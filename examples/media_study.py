#!/usr/bin/env python3
"""MediaBench mini-study: where retire-time assignment shines.

The paper's most interesting Figure 9 result is that on MediaBench, FDRT
(8.2%) outperforms even latency-free issue-time steering (4.2%), because
media kernels are loop-dominated and extremely trace-cache friendly —
exactly the regime where fill-unit reordering sees the whole picture.

This example runs a handful of media codecs under base, no-lat
issue-time, and FDRT, and reports per-program results.

    python examples/media_study.py
"""

from repro import StrategySpec, simulate
from repro.experiments import harmonic_mean

PROGRAMS = ("adpcm_enc", "gsm_dec", "jpeg_enc", "mpeg2_dec", "pegwit_enc")


def main() -> None:
    budgets = dict(instructions=30_000, warmup=25_000)
    specs = {
        "base": StrategySpec(kind="base"),
        "no-lat issue": StrategySpec(kind="issue", steer_latency=0),
        "FDRT": StrategySpec(kind="fdrt"),
    }
    header = f"{'program':<12} {'TC%':>6} " + "".join(
        f"{name:>14}" for name in specs if name != "base"
    )
    print(header)
    print("-" * len(header))
    speedups = {name: [] for name in specs if name != "base"}
    for program in PROGRAMS:
        results = {
            name: simulate(program, spec, **budgets)
            for name, spec in specs.items()
        }
        row = f"{program:<12} {results['base'].pct_tc_instructions:>6.1%} "
        for name in speedups:
            s = results[name].speedup_over(results["base"])
            speedups[name].append(s)
            row += f"{s:>14.3f}"
        print(row)
    print("-" * len(header))
    row = f"{'HM':<12} {'':>6} "
    for name in speedups:
        row += f"{harmonic_mean(speedups[name]):>14.3f}"
    print(row)


if __name__ == "__main__":
    main()
