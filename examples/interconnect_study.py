#!/usr/bin/env python3
"""Study how the inter-cluster network shapes FDRT's benefit.

Sweeps the three Figure 8 machine variants (plus the baseline) and, for
each, compares FDRT against the slot-based base — showing how topology
and hop latency change both absolute performance and the value of smart
cluster assignment.

    python examples/interconnect_study.py [benchmark]
"""

import sys

from repro import (
    StrategySpec,
    baseline_config,
    fast_forward_config,
    mesh_config,
    simulate,
    two_cluster_config,
)

MACHINES = (
    ("baseline: 4-cluster chain, 2-cyc hop", baseline_config()),
    ("mesh: chain closed into a ring", mesh_config()),
    ("fast: 1-cycle hops", fast_forward_config()),
    ("small: 8-wide, 2 clusters", two_cluster_config()),
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    budgets = dict(instructions=30_000, warmup=25_000)
    print(f"benchmark: {benchmark}\n")
    header = (f"{'machine':<40} {'base IPC':>9} {'FDRT IPC':>9} "
              f"{'speedup':>8} {'fwd dist':>9}")
    print(header)
    print("-" * len(header))
    for name, config in MACHINES:
        base = simulate(benchmark, StrategySpec(kind="base"),
                        config=config, **budgets)
        fdrt = simulate(benchmark, StrategySpec(kind="fdrt"),
                        config=config, **budgets)
        print(f"{name:<40} {base.ipc:>9.3f} {fdrt.ipc:>9.3f} "
              f"{fdrt.speedup_over(base):>8.3f} "
              f"{fdrt.avg_forward_distance:>9.2f}")
    print("\nExpected shape: the ring and 1-cycle variants shrink the cost")
    print("of bad placement, so FDRT's speedup is largest on the baseline")
    print("chain and remains positive everywhere (paper Figure 8).")


if __name__ == "__main__":
    main()
