"""Figure 9: strategy speedups over full SPECint2000 and MediaBench."""

from conftest import cached

from repro.experiments import render_figure9, run_suite_study


def test_fig9_suites(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("suite_study", run_suite_study),
        rounds=1, iterations=1,
    )
    emit(render_figure9(result))
    for suite in ("SPECint2000", "MediaBench"):
        fdrt = result.mean_speedup(suite, "FDRT")
        friendly = result.mean_speedup(suite, "Friendly")
        # Paper shape (Section 5.6): on both full suites FDRT keeps a
        # healthy improvement (paper: 7.1% / 8.2%), well ahead of
        # Friendly's scheme (1.9% / 3.7%).
        assert fdrt > 1.01, suite
        assert fdrt > friendly - 0.005, suite
    # On SPECint FDRT also matches or beats realistic issue-time
    # steering (paper: 7.1% vs 3.8%).  On MediaBench our issue-time
    # model is markedly stronger than the paper's (see EXPERIMENTS.md),
    # so that comparison is asserted for SPECint only.
    spec_fdrt = result.mean_speedup("SPECint2000", "FDRT")
    spec_issue4 = result.mean_speedup("SPECint2000", "Issue-time(4)")
    assert spec_fdrt > spec_issue4 - 0.02
    # The paper highlights that FDRT never slows any program down; allow
    # simulation noise of a point and a half per program.
    for suite, benchmarks in result.suite_benchmarks.items():
        for bench in benchmarks:
            assert result.speedup(suite, bench, "FDRT") > 0.985, (suite, bench)
