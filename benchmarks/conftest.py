"""Benchmark-harness fixtures.

Each benchmark module regenerates one of the paper's tables or figures.
The rendered tables are written both to the real stdout (bypassing pytest
capture, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
records them) and to ``benchmarks/results/<name>.txt``.

Simulations run through :mod:`repro.runtime`, so identical (benchmark,
strategy, config, budget) cells are simulated once *per cache lifetime*,
not once per test file: results persist in an on-disk content-addressed
store (default for this suite: ``benchmarks/.cache``, override with
``REPRO_CACHE_DIR``, disable with ``REPRO_NO_CACHE``) and parallelise
across worker processes with ``REPRO_JOBS=N``.  The in-process ``cached``
memo below still deduplicates whole experiment *objects* (e.g. Figure 6
and Table 8 share one strategy comparison) within a session.

Budgets: set ``REPRO_BENCH_INSTRUCTIONS`` / ``REPRO_BENCH_WARMUP`` to
shrink or grow every run (defaults 40k/30k instructions).  Budgets are
part of every cache key, so quick passes and full-budget runs coexist in
the cache without poisoning each other.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Session-wide memo of experiment results, keyed by arbitrary tuples.
_CACHE = {}


def pytest_configure(config):
    # Keep the benchmark suite's persistent results out of ~/.cache so
    # `rm -rf benchmarks/.cache` is a clean slate; explicit settings win.
    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(pathlib.Path(__file__).parent / ".cache")
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    try:
        from repro.runtime import global_cache_stats
    except ImportError:
        return
    stats = global_cache_stats()
    if stats.hits or stats.misses:
        terminalreporter.write_line(f"repro result {stats.render()}")


def cached(key, factory):
    """Memoise ``factory()`` under ``key`` for the whole session."""
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


@pytest.fixture
def emit(request):
    """Return a writer that prints a rendered artifact and archives it."""

    capture = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        name = request.node.name
        banner = f"\n===== {name} =====\n"
        with capture.global_and_fixture_disabled():
            sys.stdout.write(banner + text + "\n")
            sys.stdout.flush()
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
