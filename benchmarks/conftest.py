"""Benchmark-harness fixtures.

Each benchmark module regenerates one of the paper's tables or figures.
The rendered tables are written both to the real stdout (bypassing pytest
capture, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
records them) and to ``benchmarks/results/<name>.txt``.

Experiment runs are memoised in a session-scoped cache so that artifacts
sharing the same underlying simulations (e.g. Figure 6 and Table 8) pay
for them once.

Budgets: set ``REPRO_BENCH_INSTRUCTIONS`` / ``REPRO_BENCH_WARMUP`` to
shrink or grow every run (defaults 40k/30k instructions).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Session-wide memo of experiment results, keyed by arbitrary tuples.
_CACHE = {}


def cached(key, factory):
    """Memoise ``factory()`` under ``key`` for the whole session."""
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


@pytest.fixture
def emit(request):
    """Return a writer that prints a rendered artifact and archives it."""

    capture = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        name = request.node.name
        banner = f"\n===== {name} =====\n"
        with capture.global_and_fixture_disabled():
            sys.stdout.write(banner + text + "\n")
            sys.stdout.flush()
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
