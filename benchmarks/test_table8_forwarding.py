"""Table 8: intra-cluster forwarding share and forwarding distances."""

from conftest import cached

from repro.experiments import render_table8, run_strategy_comparison


def test_table8_forwarding(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("strategy_comparison", run_strategy_comparison),
        rounds=1, iterations=1,
    )
    emit(render_table8(result))

    def averages(metric):
        values = {}
        for label in ("Base", "Friendly", "FDRT"):
            per = [getattr(result.results[(b, label)], metric)
                   for b in result.benchmarks]
            values[label] = sum(per) / len(per)
        return values

    intra = averages("pct_intra_cluster_forwarding")
    dist = averages("avg_forward_distance")
    # Paper shape (Table 8): both retire-time schemes lift same-cluster
    # forwarding well above the base (paper: 40% -> 57% -> 62%), with
    # FDRT best; and FDRT always shortens distances the most
    # (paper notes FDRT < Friendly < Base on every benchmark).
    assert intra["Base"] < intra["Friendly"]
    assert intra["Base"] < intra["FDRT"]
    # FDRT leads Friendly at production budgets; allow small-window noise
    # (FDRT's chain feedback needs warm trace cache state).
    assert intra["FDRT"] > intra["Friendly"] - 0.03
    assert intra["FDRT"] > 0.44
    assert dist["FDRT"] < dist["Friendly"] < dist["Base"]
    for b in result.benchmarks:
        fdrt = result.results[(b, "FDRT")].avg_forward_distance
        base = result.results[(b, "Base")].avg_forward_distance
        assert fdrt < base
