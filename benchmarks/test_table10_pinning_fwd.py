"""Table 10: intra-cluster critical forwarding during cluster migration."""

from conftest import cached

from repro.experiments import render_table10, run_fdrt_analysis


def test_table10_pinning_fwd(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("fdrt_analysis", run_fdrt_analysis),
        rounds=1, iterations=1,
    )
    emit(render_table10(result))
    # The paper reports intra-cluster forwarding during migration in the
    # 50-67% band, with pinning slightly ahead on average (60.5% vs
    # 58.6%) but within a few points either way per benchmark.  Our
    # reproduction lands in the same band; we assert the band and that
    # the pinning delta stays small, not its sign (see EXPERIMENTS.md).
    for name in result.pinned:
        pin = result.pinned[name].pct_migrating_intra_cluster
        nopin = result.unpinned[name].pct_migrating_intra_cluster
        assert 0.30 < pin < 0.80
        assert 0.30 < nopin < 0.80
        assert abs(pin - nopin) < 0.20
