"""Extension benches: trace cache capacity and hop latency sweeps."""

from conftest import cached

from repro.experiments import (
    render_sweep,
    run_hop_latency_sweep,
    run_tc_capacity_sweep,
)


def test_tc_capacity_sweep(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("tc_sweep",
                       lambda: run_tc_capacity_sweep(sizes=(128, 1024, 4096))),
        rounds=1, iterations=1,
    )
    emit(render_sweep(result))
    # FDRT's feedback lives in trace cache storage: with a healthy trace
    # cache it must clearly improve on the base machine.
    assert result.mean_speedup(1024, "FDRT") > 1.0
    assert result.mean_speedup(4096, "FDRT") > 1.0


def test_hop_latency_sweep(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("hop_sweep",
                       lambda: run_hop_latency_sweep(latencies=(1, 2, 4))),
        rounds=1, iterations=1,
    )
    emit(render_sweep(result))
    # Dearer communication raises the value of good placement: FDRT's
    # speedup at 4-cycle hops must exceed its speedup at 1-cycle hops.
    assert (result.mean_speedup(4, "FDRT")
            > result.mean_speedup(1, "FDRT") - 0.01)
    # And FDRT stays ahead of Friendly at the paper's 2-cycle point.
    assert (result.mean_speedup(2, "FDRT")
            >= result.mean_speedup(2, "Friendly") - 0.01)
