"""Figure 5: expected speedup from removing dependency latencies."""

from conftest import cached

from repro.experiments import render_figure5, run_latency_study


def test_fig5_latency_removal(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("latency_study", run_latency_study),
        rounds=1, iterations=1,
    )
    emit(render_figure5(result))
    all_fwd = result.mean_speedup("No Fwd Lat")
    crit = result.mean_speedup("No Crit Fwd Lat")
    intra = result.mean_speedup("No Intra-Trace Lat")
    inter = result.mean_speedup("No Inter-Trace Lat")
    rf = result.mean_speedup("No RF Lat")
    # Paper shape (Section 3.2):
    # 1. removing all forwarding latency helps the most;
    assert all_fwd >= max(crit, intra, inter, rf) - 0.01
    assert all_fwd > 1.05
    # 2. removing only the critical (last-arriving) forwarding latency
    #    captures most of that benefit;
    assert (crit - 1.0) > 0.6 * (all_fwd - 1.0)
    # 3. register-file latency is essentially irrelevant;
    assert abs(rf - 1.0) < 0.02
    # 4. intra- and inter-trace removals land in the same ballpark, both
    #    clearly positive and clearly below removing everything.
    assert intra > 1.01 and inter > 1.01
    assert intra < all_fwd and inter < all_fwd
