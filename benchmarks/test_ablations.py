"""Ablation benches for the design choices DESIGN.md calls out.

Not paper artifacts, but checks of the claims the paper makes in prose:

* Section 5.3: biasing Friendly's default placements toward the middle
  clusters lifts its improvement (paper: 3.1% -> 4.7%).
* Section 5.3: the intra-trace half of FDRT alone already beats
  Friendly's scheme (paper: 5.7% vs 3.1%).
* Table 5 discussion: whether the chain cluster or the intra-trace
  producer takes precedence in Option C "does not matter".
* Option D's middle-cluster funneling is one of the reasons FDRT's
  forwarding distances beat Friendly's.
"""

from conftest import cached

from repro.assign.base import StrategySpec
from repro.experiments import harmonic_mean, run_matrix
from repro.workloads.suites import SPECINT2000_SELECTED

_BENCHMARKS = SPECINT2000_SELECTED[:3]  # bzip2, eon, gzip

_SPECS = [
    StrategySpec(kind="base"),
    StrategySpec(kind="friendly"),
    StrategySpec(kind="friendly", middle_bias=True),
    StrategySpec(kind="fdrt"),
    StrategySpec(kind="fdrt", intra_only=True),
    StrategySpec(kind="fdrt", chain_precedence=False),
    StrategySpec(kind="fdrt", middle_funnel=False),
]


def _run():
    return run_matrix(_BENCHMARKS, _SPECS)


def _mean_speedup(results, label):
    return harmonic_mean([
        results[(b, label)].speedup_over(results[(b, "Base")])
        for b in _BENCHMARKS
    ])


def test_ablations(benchmark, emit):
    results = benchmark.pedantic(lambda: cached("ablations", _run),
                                 rounds=1, iterations=1)
    labels = [s.label for s in _SPECS if s.kind != "base"]
    lines = ["Ablation study (harmonic-mean speedup over base, 3 benchmarks)"]
    speedups = {}
    for label in labels:
        speedups[label] = _mean_speedup(results, label)
        lines.append(f"  {label:<24} {speedups[label]:.3f}")
    emit("\n".join(lines))

    # Friendly with middle bias should not fall behind plain Friendly
    # (paper: it helps, 3.1% -> 4.7%).
    assert speedups["Friendly+middle"] > speedups["Friendly"] - 0.02
    # Intra-only FDRT is positive on its own (paper: 5.7% by itself).
    assert speedups["FDRT/intra-only"] > 1.0
    # Full FDRT improves on the base.
    assert speedups["FDRT"] > 1.0
    # Option D funneling: in the paper it shortens distances; in this
    # reproduction chain pinning already targets the middle clusters
    # (DESIGN.md §5b), so the two variants land close together rather
    # than funneling winning outright.  Assert the band, not a winner.
    for b in _BENCHMARKS:
        with_funnel = results[(b, "FDRT")].avg_forward_distance
        without = results[(b, "FDRT/no-middle")].avg_forward_distance
        assert abs(with_funnel - without) < 0.3, b
    fdrt = speedups["FDRT"]
    no_middle = speedups["FDRT/no-middle"]
    assert abs(fdrt - no_middle) < 0.06


def test_option_c_precedence_does_not_matter(benchmark, emit):
    """Paper: 'our simulations show that it does not matter which gets
    precedence' in Option C."""
    results = benchmark.pedantic(lambda: cached("ablations", _run),
                                 rounds=1, iterations=1)
    chain_first = _mean_speedup(results, "FDRT")
    producer_first = _mean_speedup(results, "FDRT/producer-first")
    emit(
        "Option C precedence: chain-first %.3f vs producer-first %.3f"
        % (chain_first, producer_first)
    )
    assert abs(chain_first - producer_first) < 0.03
