"""Figure 8: strategy robustness across alternate cluster designs."""

from conftest import cached

from repro.experiments import render_figure8, run_robustness


def test_fig8_robustness(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("robustness", run_robustness),
        rounds=1, iterations=1,
    )
    emit(render_figure8(result))
    for variant, results in result.variants.items():
        issue_label = next(
            label for (_b, label) in results if label.startswith("Issue-time")
        )
        fdrt = result.mean_speedup(variant, "FDRT")
        friendly = result.mean_speedup(variant, "Friendly")
        issue = result.mean_speedup(variant, issue_label)
        # Paper shape: on every variant FDRT still improves on the base
        # and keeps its advantage over realistic issue-time steering,
        # without any architecture-specific retuning.
        assert fdrt > 1.0, variant
        assert fdrt >= issue - 0.02, variant
        assert fdrt >= friendly - 0.02, variant
