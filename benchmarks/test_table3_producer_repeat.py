"""Table 3: frequency of repeated forwarding producers."""

from conftest import cached

from repro.experiments import render_table3, run_characterization


def test_table3_producer_repeat(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("characterization", run_characterization),
        rounds=1, iterations=1,
    )
    emit(render_table3(result))
    # Paper shape: producers repeat ~97%/94.5% (all) and ~90%/85%
    # (critical inter-trace) of the time — high enough that a simple
    # history-based prediction mechanism works.
    for r in result.results.values():
        rep = r.producer_repetition
        assert rep["all_rs1"] > 0.85
        assert rep["all_rs2"] > 0.80
        assert rep["inter_rs1"] > 0.7
        assert rep["inter_rs2"] > 0.65
