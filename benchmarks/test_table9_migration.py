"""Table 9: cluster migration with and without leader pinning."""

from conftest import cached

from repro.experiments import render_table9, run_fdrt_analysis


def test_table9_migration(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("fdrt_analysis", run_fdrt_analysis),
        rounds=1, iterations=1,
    )
    emit(render_table9(result))
    reductions = []
    chain_reductions = []
    for name in result.pinned:
        pin = result.pinned[name]
        nopin = result.unpinned[name]
        if nopin.fill_migration_rate > 0:
            reductions.append(
                1 - pin.fill_migration_rate / nopin.fill_migration_rate
            )
        if nopin.chain_migration_rate > 0:
            chain_reductions.append(
                1 - pin.chain_migration_rate / nopin.chain_migration_rate
            )
    # Paper shape: pinning reduces overall migration (27.7% avg) and
    # chain-instruction migration even more (41% avg).
    assert sum(reductions) / len(reductions) > 0.15
    assert sum(chain_reductions) / len(chain_reductions) > 0.25
