"""Table 2: criticality of forwarded deps and their inter-trace share."""

from conftest import cached

from repro.experiments import render_table2, run_characterization


def test_table2_critical_deps(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("characterization", run_characterization),
        rounds=1, iterations=1,
    )
    emit(render_table2(result))
    # Paper shape: a large majority of forwarded dependencies are
    # critical (83% avg) and a meaningful minority cross traces (28%).
    for r in result.results.values():
        assert r.pct_deps_critical > 0.5
        assert 0.1 < r.pct_critical_inter_trace < 0.6
