"""Figure 4: source of each instruction's most critical input."""

from conftest import cached

from repro.experiments import render_figure4, run_characterization


def test_fig4_critical_source(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("characterization", run_characterization),
        rounds=1, iterations=1,
    )
    emit(render_figure4(result))
    # Paper shape: RF ~44%, RS1 ~31%, RS2 ~25% — forwarding supplies the
    # critical input for the majority, and RS1 outweighs RS2.
    for r in result.results.values():
        src = r.critical_source
        assert 0.2 < src["RF"] < 0.65
        assert src["RS1"] > src["RS2"]
        assert src["RS1"] + src["RS2"] > 0.35
