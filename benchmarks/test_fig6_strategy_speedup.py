"""Figure 6: the headline strategy comparison over six SPECint programs."""

from conftest import cached

from repro.experiments import render_figure6, run_strategy_comparison


def test_fig6_strategy_speedup(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("strategy_comparison", run_strategy_comparison),
        rounds=1, iterations=1,
    )
    emit(render_figure6(result))
    no_lat = result.mean_speedup("No-lat Issue-time")
    issue4 = result.mean_speedup("Issue-time(4)")
    fdrt = result.mean_speedup("FDRT")
    friendly = result.mean_speedup("Friendly")
    # Paper shape (Section 5.2):
    # 1. latency-free issue-time steering is the best option overall;
    assert no_lat >= max(fdrt, friendly, issue4) - 0.005
    # 2. FDRT clearly improves on the base machine and on Friendly's
    #    prior retire-time scheme (paper: 11.5% vs 3.1%);
    assert fdrt > 1.02
    assert fdrt > friendly
    # 3. with realistic steering latency, issue-time's advantage shrinks
    #    to be comparable with FDRT;
    assert abs(issue4 - fdrt) < 0.05
    # 4. Friendly still beats the base machine.
    assert friendly > 1.0
