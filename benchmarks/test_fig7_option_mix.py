"""Figure 7: distribution of FDRT assignment options (Table 5)."""

from conftest import cached

from repro.experiments import render_figure7, run_fdrt_analysis


def test_fig7_option_mix(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("fdrt_analysis", run_fdrt_analysis),
        rounds=1, iterations=1,
    )
    emit(render_figure7(result))
    for r in result.pinned.values():
        counts = r.option_counts
        total = sum(counts.values())
        assert total > 0
        # Paper shape: dependency-guided options (A+B+C) cover the
        # majority (~64%), a moderate fraction has no identified
        # dependencies (E, ~24%), middle-funneled producers (D) are a
        # ~10% class and very few instructions fail placement outright.
        guided = (counts["A"] + counts["B"] + counts["C"]) / total
        assert guided > 0.4
        assert counts["E"] / total < 0.5
        assert counts["skipped"] / total < 0.15
