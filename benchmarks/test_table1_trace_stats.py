"""Table 1: trace cache residency and trace size per benchmark."""

from conftest import cached

from repro.experiments import render_table1, run_characterization


def test_table1_trace_stats(benchmark, emit):
    result = benchmark.pedantic(
        lambda: cached("characterization", run_characterization),
        rounds=1, iterations=1,
    )
    table = render_table1(result)
    emit(table)
    # Sanity of the reproduced shape: most instructions come from the
    # trace cache and traces average 10+ instructions (paper: ~13).
    for r in result.results.values():
        assert r.pct_tc_instructions > 0.5
        assert r.avg_trace_size > 8.0
